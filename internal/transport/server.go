package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
)

// Backend is the storage a Server fronts. *cluster.Cluster satisfies it,
// so a server daemon hosts one or more cluster nodes — a single-shard
// region server or a whole sub-cluster — behind one listener. Writes
// and scans report failures (a backend may itself be a degraded
// cluster); the server carries them back as error frames.
type Backend interface {
	Get(key []byte) ([]byte, bool)
	Put(key, value []byte) error
	Delete(key []byte) error
	Scan(start []byte, limit int) ([]engine.Entry, error)
	Apply(ops []cluster.Op) ([]cluster.OpResult, error)
	TryApply(ops []cluster.Op) ([]cluster.OpResult, error)
	Stats() cluster.Stats
}

// TaskHost is the analytics task plane a Server optionally fronts (the
// per-node executor in internal/analytics implements it). Specs and
// partition payloads are opaque bytes: the transport frames and chunks
// them but never interprets them, so the engine's job encoding can
// evolve without wire changes. SubmitTask must return quickly — task
// execution happens on the host's own workers, not under the server's
// admission permit, which only covers the submit/status/fetch exchanges
// themselves.
type TaskHost interface {
	// SubmitTask registers and starts one task, returning the
	// host-local task id the status and fetch calls use.
	SubmitTask(spec []byte) (uint64, error)
	// TaskStatus reports whether the task finished; err carries a
	// finished task's execution failure (nil while running). An unknown
	// id is also reported through err — to a coordinator, a task its
	// executor no longer knows (restart, expiry) is a failed task.
	TaskStatus(id uint64) (done bool, err error)
	// ShuffleFetch returns one of a completed task's output partitions
	// (the server pages it across frames as needed).
	ShuffleFetch(id uint64, part uint32) ([]byte, error)
}

// errNoTaskHost answers task-plane opcodes on a server with no executor.
var errNoTaskHost = errors.New("transport: server hosts no task executor")

// batchApplier is the optional Backend capability for allocation-free
// batch execution: results land in a caller-owned slice (len(res) ==
// len(ops)) instead of a per-call allocation. *cluster.Cluster
// implements it; the server type-asserts once at construction and falls
// back to Apply/TryApply for backends that don't.
type batchApplier interface {
	ApplyInto(ops []cluster.Op, res []cluster.OpResult) error
	TryApplyInto(ops []cluster.Op, res []cluster.OpResult) error
}

// scanAppender is the optional Backend capability for scan-buffer reuse:
// entries append into a caller-owned slice that the server recycles
// across requests. Entry keys/values are engine-owned copies, so only
// the slice header is pooled — the data survives the buffer's reuse.
type scanAppender interface {
	AppendScan(dst []engine.Entry, start []byte, limit int) ([]engine.Entry, error)
}

// viewHost is the optional Backend capability for elastic membership:
// the anti-entropy exchange OpGossip carries. *cluster.Cluster in
// elastic mode implements it; servers fronting a static cluster or a
// bare engine answer OpGossip with an error frame instead.
type viewHost interface {
	HandleGossip(payload []byte) ([]byte, error)
}

// localApplier is the optional Backend capability OpMirror and
// OpGetLocal land on: store-only operations that must not re-enter the
// destination's routing or replication fan-out. Store-only writes
// (replica mirrors, hint replays, migration copies) skip the replication
// fan-out; migration copies carry the epoch they were planned under and
// the backend refuses mismatches with cluster.ErrWrongEpoch so a sender
// never mistakes a dropped copy for a delivered one. Store-only reads
// answer from the member's own shard without re-resolving ownership —
// the receiver's ring may disagree with the sender's mid-membership-
// change, and re-routing there is how forwarding cycles start.
type localApplier interface {
	ApplyLocal(op cluster.Op, migration bool, epoch uint64) error
	GetLocal(key []byte) ([]byte, bool, error)
}

// epochHost is the optional Backend capability behind the wire-level
// epoch fence: requests stamped with a view epoch (opFlagEpoch) are
// checked against the backend's current epoch before admission, and
// stale ones bounce with the fresh encoded view instead of being
// misrouted against an ownership map the client no longer has.
type epochHost interface {
	ViewEpoch() uint64
	EncodedView() []byte
}

// batchScratch is the pooled per-request decode/execute scratch for
// OpBatch: the decoded ops (aliasing the request frame) and the result
// slots. Released back to batchPool after the response frame is encoded.
type batchScratch struct {
	ops []cluster.Op
	res []cluster.OpResult
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// entriesPool recycles scan result buffers ([]engine.Entry headers; the
// entries' bytes are engine-owned) across OpScan dispatches.
var entriesPool sync.Pool

// ServerOptions tunes a Server. The zero value uses the defaults.
type ServerOptions struct {
	// Tasks, when non-nil, serves the analytics task plane (OpTaskSubmit
	// / OpTaskStatus / OpShuffleFetch) alongside the KV data plane.
	Tasks TaskHost
	// MaxInFlight bounds concurrently executing requests across all
	// connections (default 256). Requests beyond the bound are answered
	// immediately with an overload frame — the wire form of the
	// cluster's admission control, surfacing as cluster.ErrOverload at
	// the client.
	MaxInFlight int
	// MaxFrame bounds accepted frame sizes (default DefaultMaxFrame).
	MaxFrame int
	// WriteTimeout bounds each response write (default 30s). A client
	// that stops reading its responses trips it, breaking that
	// connection instead of parking request goroutines — and the
	// admission permits they hold — behind a full TCP buffer forever.
	WriteTimeout time.Duration
	// SlowRequest, when positive, records every request whose service
	// time (admission wait + dispatch) reaches it into the slow-request
	// log (Server.SlowLog), traced or not.
	SlowRequest time.Duration
	// TraceBuffer sizes the span and slow-request rings (default 256
	// spans each).
	TraceBuffer int
	// Spans, when non-nil, is the span ring to record into instead of a
	// private one. A daemon that hosts both a server and a cluster
	// coordinator points both at one ring, so OpTraceFetch serves every
	// hop the process recorded regardless of which layer recorded it.
	Spans *obs.SpanLog
	// Metrics, when non-nil, is the registry OpMetricsFetch snapshots —
	// point it at the daemon's full registry (server + cluster + engine
	// series) so the federation sees everything the node's /metrics
	// page would show. Nil serves empty snapshots, not errors.
	Metrics *obs.Registry
	// Events, when non-nil, is the cluster event log OpEventsFetch
	// serves. Nil serves empty event sets.
	Events *obs.EventLog
}

func (o *ServerOptions) normalize() {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 256
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.TraceBuffer <= 0 {
		o.TraceBuffer = 256
	}
}

// maxReqOpcode bounds the per-opcode counter and histogram arrays:
// request opcodes are a dense range ending at OpEventsFetch (0x10), so
// the hot-path count is one in-bounds array index — no map lookup, no
// allocation.
const maxReqOpcode = 0x11

// serverMetrics is the server's always-on instrumentation. Every field
// is a plain atomic recorded inline on the request path; registries
// adopt them at scrape time (RegisterMetrics), so serving is identical
// whether or not anything scrapes.
type serverMetrics struct {
	reqs     [maxReqOpcode]obs.Counter   // per request opcode
	opLat    [maxReqOpcode]obs.Histogram // per request opcode service time
	bytesIn  obs.Counter
	bytesOut obs.Counter
	traced   obs.Counter // requests that carried a trace id
	lat      obs.Histogram
}

// Server hosts a Backend on a TCP listener. Each connection gets a read
// goroutine (decode + dispatch) and a write goroutine (respond), so many
// requests from one connection execute concurrently and responses return
// in completion order — the pipelining the wire ids exist for.
type Server struct {
	ln      net.Listener
	backend Backend
	opts    ServerOptions

	// applyInto / scanInto are the backend's optional allocation-free
	// capabilities, resolved once at construction (nil when absent).
	applyInto batchApplier
	scanInto  scanAppender

	// views / localApply / epochs are the backend's optional elastic-
	// membership capabilities (gossip exchange, store-only mirror writes,
	// and the stale-epoch fence), resolved once at construction.
	views      viewHost
	localApply localApplier
	epochs     epochHost

	tokens chan struct{} // in-flight admission permits

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg     sync.WaitGroup // accept loop + connection handlers
	served atomic.Uint64  // requests admitted and executed
	shed   atomic.Uint64  // requests refused by admission control

	metrics serverMetrics
	spans   *obs.SpanLog // hops of traced requests
	slow    *obs.SpanLog // requests at or over SlowRequest
}

// Listen binds addr and serves b until Close.
func Listen(addr string, b Backend, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, b, opts), nil
}

// Serve runs a server on an existing listener until Close.
func Serve(ln net.Listener, b Backend, opts ServerOptions) *Server {
	opts.normalize()
	s := &Server{
		ln:      ln,
		backend: b,
		opts:    opts,
		tokens:  make(chan struct{}, opts.MaxInFlight),
		conns:   map[net.Conn]struct{}{},
		spans:   opts.Spans,
		slow:    obs.NewSpanLog(opts.TraceBuffer),
	}
	if s.spans == nil {
		// Private ring: name it after the listener so fetched spans
		// identify this process. A shared ring (opts.Spans) is named by
		// whoever owns it.
		s.spans = obs.NewSpanLog(opts.TraceBuffer)
		s.spans.SetNode(ln.Addr().String())
	}
	s.applyInto, _ = b.(batchApplier)
	s.scanInto, _ = b.(scanAppender)
	s.views, _ = b.(viewHost)
	s.localApply, _ = b.(localApplier)
	s.epochs, _ = b.(epochHost)
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Served returns the number of requests admitted and executed.
func (s *Server) Served() uint64 { return s.served.Load() }

// Shed returns the number of requests refused by admission control.
func (s *Server) Shed() uint64 { return s.shed.Load() }

// Spans returns the ring of span records from traced requests.
func (s *Server) Spans() *obs.SpanLog { return s.spans }

// SlowLog returns the ring of requests that met ServerOptions.SlowRequest.
func (s *Server) SlowLog() *obs.SpanLog { return s.slow }

// RequestLatency returns the server's request-latency histogram — the
// series SLO objectives layer over.
func (s *Server) RequestLatency() *obs.Histogram { return &s.metrics.lat }

// registeredOps is every request opcode RegisterMetrics exports a
// counter series for — the dense low range the reqs array indexes.
var registeredOps = []Opcode{
	OpGet, OpPut, OpDelete, OpScan, OpBatch, OpStats, OpPing,
	OpTaskSubmit, OpTaskStatus, OpShuffleFetch, OpTraceFetch,
	OpGossip, OpMirror, OpGetLocal, OpMetricsFetch, OpEventsFetch,
}

// RegisterMetrics exports the server's counters into r under the
// bd_transport_* families (DESIGN.md §11). Call once per server per
// registry, at setup.
func (s *Server) RegisterMetrics(r *obs.Registry) {
	for _, op := range registeredOps {
		r.CounterFunc("bd_transport_requests_total", "Requests received, by opcode.",
			obs.Labels{"op": opName(op)}, s.metrics.reqs[op].Value)
		r.RegisterHistogram("bd_transport_op_seconds",
			"Request service time by opcode: admission wait plus dispatch.",
			obs.Labels{"op": opName(op)}, &s.metrics.opLat[op])
	}
	r.CounterFunc("bd_transport_bytes_total", "Wire bytes moved, by direction.",
		obs.Labels{"dir": "in"}, s.metrics.bytesIn.Value)
	r.CounterFunc("bd_transport_bytes_total", "Wire bytes moved, by direction.",
		obs.Labels{"dir": "out"}, s.metrics.bytesOut.Value)
	r.CounterFunc("bd_transport_served_total", "Requests admitted and executed.", nil, s.served.Load)
	r.CounterFunc("bd_transport_shed_total", "Requests refused by admission control.", nil, s.shed.Load)
	r.CounterFunc("bd_transport_traced_requests_total", "Requests that carried a trace id.",
		nil, s.metrics.traced.Value)
	r.CounterFunc("bd_transport_slow_requests_total", "Requests at or over the slow-request threshold.",
		nil, s.slow.Total)
	r.GaugeFunc("bd_transport_inflight", "Requests currently holding an admission permit.",
		nil, func() float64 { return float64(len(s.tokens)) })
	r.RegisterHistogram("bd_transport_request_seconds",
		"Request service time: admission wait plus dispatch.", nil, &s.metrics.lat)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// connState is the per-connection dispatch context: the response queue
// and the in-flight request group. It exists so request goroutines spawn
// as a plain method call (`go cs.serveReq(...)`) — no per-request
// closure allocation.
type connState struct {
	s    *Server
	out  chan *frame
	reqs sync.WaitGroup
}

// traceCtx is one request's trace context, passed by value down the
// dispatch path (no per-request allocation). All-zero for untraced
// requests: span is this hop's freshly minted span id (forwarded to
// downstream hops as their parent), parent the upstream hop's.
type traceCtx struct {
	trace  uint64
	parent uint64
	span   uint64
}

// serveReq executes one admitted request. Frame ownership (DESIGN.md
// §12): pf — the pooled request frame payload aliases — is released as
// soon as dispatch returns, because every retention path below dispatch
// copies (the engine copies keys/values on apply, the hint buffer copies
// on enqueue, error messages copy into strings). The response frame's
// ownership passes to the writer goroutine via out.
func (cs *connState) serveReq(id uint64, tc traceCtx, op Opcode, pf *frame, payload []byte, start time.Time) {
	s := cs.s
	n := len(payload)
	// admitted marks the end of the queue-wait phase (time parked on the
	// admission permit, plus goroutine handoff). Only traced or
	// slow-logged requests pay the extra clock read.
	var admitted time.Time
	if tc.trace != 0 || s.opts.SlowRequest > 0 {
		admitted = time.Now()
	}
	resp := s.dispatch(id, tc, op, payload)
	putFrame(pf)
	cs.out <- resp
	s.served.Add(1)
	s.observe(op, tc, start, admitted, n)
	<-s.tokens
	cs.reqs.Done()
}

// errFrame builds a complete RespError frame for err in a pooled buffer.
func errFrame(id uint64, err error) *frame {
	code, msg := errorCode(err)
	f := getFrame(frameOverhead + 4 + 1 + len(msg))
	f.b = beginResponse(f.b[:0], id, RespError)
	f.b = append(f.b, code)
	f.b = append(f.b, msg...)
	f.b = finishFrame(f.b)
	return f
}

// okFrame builds a complete payload-less RespOK frame.
func okFrame(id uint64) *frame {
	f := getFrame(frameOverhead + 4)
	f.b = finishFrame(beginResponse(f.b[:0], id, RespOK))
	return f
}

// viewFrame builds a RespView frame carrying an encoded cluster view
// (empty when the peer is already in sync).
func viewFrame(id uint64, view []byte) *frame {
	f := getFrame(frameOverhead + 4 + len(view))
	f.b = beginResponse(f.b[:0], id, RespView)
	f.b = append(f.b, view...)
	f.b = finishFrame(f.b)
	return f
}

// handle runs one connection: the read loop decodes and dispatches
// frames; a writer goroutine serializes response frames back out. On
// read loop exit (peer hangup or drain kick), in-flight requests finish,
// their responses flush, and only then does the connection close — a
// connection never drops admitted work.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer s.forget(conn)
	cs := &connState{s: s, out: make(chan *frame, 64)}
	out := cs.out
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriterSize(conn, 64<<10)
		broken := false
		for f := range out {
			if broken {
				putFrame(f)
				continue // keep draining so request goroutines never block
			}
			s.metrics.bytesOut.Add(uint64(len(f.b)))
			conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
			_, err := bw.Write(f.b)
			putFrame(f) // bufio copied the bytes; the frame is free
			if err != nil {
				broken = true
				continue
			}
			// Flush when no more responses are queued: batches of
			// pipelined responses coalesce into fewer syscalls.
			if len(out) == 0 {
				if err := bw.Flush(); err != nil {
					broken = true
				}
			}
		}
		conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		bw.Flush()
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		id, op, pf, err := readPooledFrame(br, s.opts.MaxFrame)
		if err != nil {
			if errors.Is(err, ErrMalformed) || errors.Is(err, ErrFrameTooLarge) {
				// The stream is unrecoverable (framing lost), but tell
				// the peer why before hanging up.
				out <- errFrame(id, err)
			}
			break
		}
		start := time.Now()
		s.metrics.bytesIn.Add(uint64(13 + len(pf.b)))
		var tc traceCtx
		var payload []byte
		var epoch uint64
		op, tc.trace, tc.parent, epoch, payload, err = splitExt(op, pf.b)
		if err != nil {
			// The frame itself parsed — only the extensions are short.
			// Fail the request, keep the connection.
			putFrame(pf)
			out <- errFrame(id, err)
			continue
		}
		// Epoch fence: a request stamped with a view epoch is checked
		// before admission. A stale router gets the fresh view back
		// (RespView) instead of an answer computed against an ownership
		// map it no longer holds — the client re-plans and retries.
		if epoch != 0 && s.epochs != nil {
			if cur := s.epochs.ViewEpoch(); cur != epoch {
				putFrame(pf)
				out <- viewFrame(id, s.epochs.EncodedView())
				continue
			}
		}
		if int(op) < len(s.metrics.reqs) {
			s.metrics.reqs[op].Inc()
		}
		if tc.trace != 0 {
			s.metrics.traced.Inc()
			tc.span = obs.NewSpanID()
		}
		// Liveness answers straight from the read loop, bypassing
		// admission: an overloaded server is still alive, and a prober
		// that can be shed would convert every overload into a false
		// death verdict.
		if op == OpPing {
			putFrame(pf)
			out <- okFrame(id)
			continue
		}
		// Membership gossip also bypasses admission: an overloaded server
		// that sheds its view exchanges can never converge, and
		// convergence is exactly what matters when the cluster is busy
		// enough to shed. It must NOT run on the read loop, though: a
		// merge that changes the view takes the cluster's write lock,
		// which can wait behind in-flight requests pinning the old view
		// across their own remote sub-calls. Parking the read loop there
		// stalls every response on this connection — including the epoch
		// bounces those very sub-calls may be waiting for — which welds
		// two busy members into a distributed deadlock broken only by
		// timeouts. A goroutine per exchange keeps the loop draining;
		// probers send a handful of exchanges per second, so the fan-out
		// is trivial.
		if op == OpGossip && s.views != nil {
			cs.reqs.Add(1)
			go func(id uint64, payload []byte, pf *frame) {
				defer cs.reqs.Done()
				merged, gerr := s.views.HandleGossip(payload)
				putFrame(pf)
				if gerr != nil {
					out <- errFrame(id, gerr)
				} else {
					out <- viewFrame(id, merged)
				}
			}(id, payload, pf)
			continue
		}
		// Admission: a backpressure batch (Apply) must never shed — it
		// blocks the connection's read loop for a permit instead, which
		// is honest backpressure (TCP pushes back to the sender) and
		// matches cluster.Apply's block-don't-shed contract. Everything
		// else sheds with an overload frame when the server is full.
		if op == OpBatch && len(payload) > 0 && payload[0]&batchFlagTry == 0 {
			s.tokens <- struct{}{}
		} else {
			select {
			case s.tokens <- struct{}{}:
			default:
				s.shed.Add(1)
				putFrame(pf)
				out <- errFrame(id, cluster.ErrOverload)
				continue
			}
		}
		cs.reqs.Add(1)
		go cs.serveReq(id, tc, op, pf, payload, start)
	}
	cs.reqs.Wait()
	close(out)
	<-writerDone
	conn.Close()
}

// observe finishes one request's accounting: latency histogram always,
// a span record when the request was traced, a slow-log record when it
// met the configured threshold. Untraced fast requests never touch a
// span log, so the hot path stays three atomic adds and two clock reads.
// admitted (when set) splits the span into queue-wait and exec phases.
func (s *Server) observe(op Opcode, tc traceCtx, start, admitted time.Time, bytes int) {
	dur := time.Since(start)
	s.metrics.lat.Observe(dur)
	if int(op) < len(s.metrics.opLat) {
		// Per-opcode latency feeds the federation's per-opcode p50/p99
		// (bdtop); three more atomic adds, still allocation-free.
		s.metrics.opLat[op].Observe(dur)
	}
	if tc.trace == 0 && (s.opts.SlowRequest <= 0 || dur < s.opts.SlowRequest) {
		return
	}
	span := obs.Span{
		Trace:  tc.trace,
		ID:     tc.span,
		Parent: tc.parent,
		Name:   "server/" + opName(op),
		Start:  start,
		Dur:    dur,
		Bytes:  bytes,
	}
	if !admitted.IsZero() {
		queue := admitted.Sub(start)
		if queue < 0 {
			queue = 0
		}
		if exec := dur - queue; exec >= 0 {
			span.Phases = []obs.Phase{
				{Name: "queue", Dur: queue},
				{Name: "exec", Dur: exec},
			}
		}
	}
	if tc.trace != 0 {
		s.spans.Record(span)
	}
	if s.opts.SlowRequest > 0 && dur >= s.opts.SlowRequest {
		s.slow.Record(span)
	}
}

// dispatch executes one decoded request against the backend and builds
// the response frame directly in a pooled buffer — engine values are
// appended straight into the frame the writer goroutine will hand to
// the bufio.Writer, with no intermediate payload slice. A nonzero trace
// is stamped onto batch ops (with this hop's span id as their parent),
// so a backend that is itself a cluster with remote members keeps
// propagating — and correctly parenting — the trace.
func (s *Server) dispatch(id uint64, tc traceCtx, op Opcode, payload []byte) *frame {
	switch op {
	case OpGet:
		v, ok := s.backend.Get(payload)
		f := getFrame(frameOverhead + 4 + 1 + len(v))
		f.b = beginResponse(f.b[:0], id, RespValue)
		f.b = finishFrame(EncodeValue(f.b, v, ok))
		return f
	case OpPut:
		key, value, err := DecodePut(payload)
		if err != nil {
			return errFrame(id, err)
		}
		if tc.trace != 0 {
			// Backend.Put has no trace parameter; a traced write detours
			// through the one-op batch path so the context reaches the
			// cluster's replication machinery (and the replicas' spans
			// parent onto this hop). Untraced writes keep the direct call.
			if err := s.applyTracedWrite(cluster.Op{
				Kind: cluster.OpPut, Key: key, Value: value,
				Trace: tc.trace, Parent: tc.span,
			}); err != nil {
				return errFrame(id, err)
			}
			return okFrame(id)
		}
		if err := s.backend.Put(key, value); err != nil {
			return errFrame(id, err)
		}
		return okFrame(id)
	case OpDelete:
		if tc.trace != 0 {
			if err := s.applyTracedWrite(cluster.Op{
				Kind: cluster.OpDelete, Key: payload,
				Trace: tc.trace, Parent: tc.span,
			}); err != nil {
				return errFrame(id, err)
			}
			return okFrame(id)
		}
		if err := s.backend.Delete(payload); err != nil {
			return errFrame(id, err)
		}
		return okFrame(id)
	case OpScan:
		start, limit, err := DecodeScan(payload)
		if err != nil {
			return errFrame(id, err)
		}
		// Scan into a pooled entry buffer when the backend supports it;
		// entry keys/values are engine-owned copies, so recycling the
		// slice after encoding is aliasing-safe.
		var entries []engine.Entry
		var eb *[]engine.Entry
		if s.scanInto != nil {
			if v := entriesPool.Get(); v != nil {
				eb = v.(*[]engine.Entry)
			} else {
				eb = new([]engine.Entry)
			}
			entries, err = s.scanInto.AppendScan((*eb)[:0], start, limit)
		} else {
			entries, err = s.backend.Scan(start, limit)
		}
		if err != nil {
			// A degraded backend scan (lost keyrange coverage) fails the
			// request loudly: a silently short page would poison the
			// client's "short means exhausted" pagination contract.
			if eb != nil {
				entriesPool.Put(eb)
			}
			return errFrame(id, err)
		}
		// Bound the response to what the peer will accept: a frame over
		// MaxFrame would kill the connection (and every pipelined
		// request on it) instead of just shortening the page. A cut
		// page is flagged `more` so the client paginates the remainder
		// rather than mistaking it for end-of-range.
		more := false
		budget := s.opts.MaxFrame - frameOverhead - 64
		size := 5
		for i := range entries {
			size += 8 + len(entries[i].Key) + len(entries[i].Value)
			// Never truncate to zero: an empty page reads as
			// end-of-keyspace to paginating callers. A single entry
			// beyond MaxFrame fails loudly at the client instead.
			if size > budget && i > 0 {
				entries = entries[:i]
				more = true
				break
			}
		}
		f := getFrame(frameOverhead + 4 + encodedEntriesLen(entries))
		f.b = beginResponse(f.b[:0], id, RespEntries)
		f.b = finishFrame(EncodeEntries(f.b, entries, more))
		if eb != nil {
			*eb = entries[:0]
			entriesPool.Put(eb)
		}
		return f
	case OpBatch:
		sc := batchPool.Get().(*batchScratch)
		ops, try, err := DecodeBatchAppend(sc.ops[:0], payload)
		if err != nil {
			batchPool.Put(sc)
			return errFrame(id, err)
		}
		sc.ops = ops
		if tc.trace != 0 {
			for i := range ops {
				ops[i].Trace = tc.trace
				ops[i].Parent = tc.span
			}
		}
		var res []cluster.OpResult
		var aerr error
		if s.applyInto != nil {
			for cap(sc.res) < len(ops) {
				sc.res = append(sc.res[:cap(sc.res)], cluster.OpResult{})
			}
			res = sc.res[:len(ops)]
			if try {
				aerr = s.applyInto.TryApplyInto(ops, res)
			} else {
				aerr = s.applyInto.ApplyInto(ops, res)
			}
		} else if try {
			res, aerr = s.backend.TryApply(ops)
		} else {
			res, aerr = s.backend.Apply(ops)
		}
		// Results and the execution error travel together: TryApply
		// under overload still returns the accepted portion. Results are
		// positional, so an oversized set cannot be truncated like a
		// scan page — fail the batch loudly instead of emitting a frame
		// the peer will kill the connection over.
		_, msg := errorCode(aerr)
		size := encodedResultsLen(res, msg)
		if frameOverhead+size > s.opts.MaxFrame {
			batchPool.Put(sc)
			return errFrame(id,
				fmt.Errorf("batch response of %d bytes exceeds the %d-byte frame limit; split the batch", frameOverhead+size, s.opts.MaxFrame))
		}
		f := getFrame(frameOverhead + 4 + size)
		f.b = beginResponse(f.b[:0], id, RespResults)
		f.b = finishFrame(EncodeResults(f.b, res, aerr))
		batchPool.Put(sc)
		return f
	case OpStats:
		st := s.backend.Stats()
		f := getFrame(frameOverhead + 4 + 4 + len(st.Nodes)*statsFieldCount*8)
		f.b = beginResponse(f.b[:0], id, RespStats)
		f.b = finishFrame(EncodeStats(f.b, st))
		return f
	case OpTaskSubmit:
		if s.opts.Tasks == nil {
			return errFrame(id, errNoTaskHost)
		}
		taskID, err := s.opts.Tasks.SubmitTask(payload)
		if err != nil {
			return errFrame(id, err)
		}
		f := getFrame(frameOverhead + 4 + 8)
		f.b = beginResponse(f.b[:0], id, RespTask)
		f.b = finishFrame(EncodeTaskID(f.b, taskID))
		return f
	case OpTaskStatus:
		if s.opts.Tasks == nil {
			return errFrame(id, errNoTaskHost)
		}
		taskID, err := DecodeTaskID(payload)
		if err != nil {
			return errFrame(id, err)
		}
		done, taskErr := s.opts.Tasks.TaskStatus(taskID)
		_, msg := errorCode(taskErr)
		f := getFrame(frameOverhead + 4 + 2 + len(msg))
		f.b = beginResponse(f.b[:0], id, RespTaskStatus)
		f.b = finishFrame(EncodeTaskStatus(f.b, done, taskErr))
		return f
	case OpShuffleFetch:
		if s.opts.Tasks == nil {
			return errFrame(id, errNoTaskHost)
		}
		taskID, part, offset, err := DecodeShuffleFetch(payload)
		if err != nil {
			return errFrame(id, err)
		}
		data, err := s.opts.Tasks.ShuffleFetch(taskID, part)
		if err != nil {
			return errFrame(id, err)
		}
		// Page the partition under the frame budget, like scan pages: the
		// client advances offset until a frame without `more` arrives.
		budget := s.opts.MaxFrame - frameOverhead - 64
		if int64(offset) > int64(len(data)) {
			offset = uint32(len(data))
		}
		chunk := data[offset:]
		more := false
		if len(chunk) > budget {
			chunk = chunk[:budget]
			more = true
		}
		f := getFrame(frameOverhead + 4 + 1 + len(chunk))
		f.b = beginResponse(f.b[:0], id, RespChunk)
		f.b = finishFrame(EncodeChunk(f.b, chunk, more))
		return f
	case OpGossip:
		if s.views == nil {
			return errFrame(id, errors.New("transport: server hosts no elastic cluster"))
		}
		merged, err := s.views.HandleGossip(payload)
		if err != nil {
			return errFrame(id, err)
		}
		return viewFrame(id, merged)
	case OpMirror:
		if s.localApply == nil {
			return errFrame(id, errors.New("transport: server hosts no elastic cluster"))
		}
		mop, migration, epoch, err := DecodeMirror(payload)
		if err != nil {
			return errFrame(id, err)
		}
		if err := s.localApply.ApplyLocal(mop, migration, epoch); err != nil {
			return errFrame(id, err)
		}
		return okFrame(id)
	case OpGetLocal:
		if s.localApply == nil {
			return errFrame(id, errors.New("transport: server hosts no elastic cluster"))
		}
		v, ok, err := s.localApply.GetLocal(payload)
		if err != nil {
			return errFrame(id, err)
		}
		f := getFrame(frameOverhead + 4 + 1 + len(v))
		f.b = beginResponse(f.b[:0], id, RespValue)
		f.b = finishFrame(EncodeValue(f.b, v, ok))
		return f
	case OpMetricsFetch:
		// Cold path by design: a snapshot walks every series once under
		// the registry lock, and nothing here touches the request pools
		// beyond the response frame itself.
		var snap *obs.RegistrySnapshot
		if s.opts.Metrics != nil {
			snap = s.opts.Metrics.Capture(s.Addr())
		} else {
			snap = &obs.RegistrySnapshot{Node: s.Addr()}
		}
		enc := obs.EncodeSnapshot(snap)
		if frameOverhead+4+len(enc) > s.opts.MaxFrame {
			return errFrame(id, fmt.Errorf("transport: metrics snapshot of %d bytes exceeds the frame limit", len(enc)))
		}
		f := getFrame(frameOverhead + 4 + len(enc))
		f.b = beginResponse(f.b[:0], id, RespMetrics)
		f.b = append(f.b, enc...)
		f.b = finishFrame(f.b)
		return f
	case OpEventsFetch:
		events := s.opts.Events.Events() // nil log → empty set
		// Shed oldest events rather than build a frame the peer would
		// reject; the timeline keeps its newest entries.
		budget := s.opts.MaxFrame - frameOverhead - 64
		for len(events) > 0 && obs.EncodedEventsLen(events) > budget {
			events = events[1:]
		}
		enc := obs.EncodeEvents(events)
		f := getFrame(frameOverhead + 4 + len(enc))
		f.b = beginResponse(f.b[:0], id, RespEvents)
		f.b = append(f.b, enc...)
		f.b = finishFrame(f.b)
		return f
	case OpTraceFetch:
		tid, err := DecodeTaskID(payload)
		if err != nil {
			return errFrame(id, err)
		}
		spans := s.spans.ByTrace(tid)
		// Shed oldest spans rather than build a frame the peer would
		// reject; the assembler treats them as missing hops.
		budget := s.opts.MaxFrame - frameOverhead - 64
		for len(spans) > 0 && encodedSpansLen(spans) > budget {
			spans = spans[1:]
		}
		f := getFrame(frameOverhead + 4 + encodedSpansLen(spans))
		f.b = beginResponse(f.b[:0], id, RespSpans)
		f.b = finishFrame(EncodeSpans(f.b, spans))
		return f
	default:
		return errFrame(id, ErrMalformed)
	}
}

// applyTracedWrite routes one traced single-key write through the batch
// path, which is the only backend surface that carries trace context.
// Only traced requests take this detour, so the untraced hot path keeps
// the direct Put/Delete calls.
func (s *Server) applyTracedWrite(op cluster.Op) error {
	ops := [1]cluster.Op{op}
	if s.applyInto != nil {
		var res [1]cluster.OpResult
		return s.applyInto.ApplyInto(ops[:], res[:])
	}
	_, err := s.backend.Apply(ops[:])
	return err
}

// Close drains the server gracefully: stop accepting, kick every
// connection's read loop, let admitted requests finish and their
// responses flush, then close the connections. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		// An immediate read deadline unblocks the read loop; in-flight
		// work still completes because writes carry no deadline.
		c.SetReadDeadline(time.Now())
	}
	s.wg.Wait()
	return err
}
