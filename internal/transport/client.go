package transport

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
)

// Client errors.
var (
	// ErrTimeout reports a request that outlived its deadline.
	ErrTimeout = errors.New("transport: request timed out")
	// ErrClientClosed reports use of a closed client.
	ErrClientClosed = errors.New("transport: client closed")
)

// ClientOptions tunes a Client. The zero value uses the defaults.
type ClientOptions struct {
	// Conns sizes the connection pool (default 1). Requests spread
	// round-robin; each connection pipelines every request issued on it
	// concurrently, matched back by frame id.
	Conns int
	// Timeout bounds one request round trip (default 10s).
	Timeout time.Duration
	// DialTimeout bounds the whole connect phase including retries
	// (default 5s). Dial keeps retrying inside the window so a client
	// can start before its server finishes binding.
	DialTimeout time.Duration
	// RetryOverload is how many times the blocking ops (Get, Put,
	// Delete, Scan, Apply, Stats) retry after cluster.ErrOverload, with
	// doubling backoff (default 3). TryApply never retries — its callers
	// want the shed signal.
	RetryOverload int
	// RetryBackoff is the first retry's sleep, doubling each attempt
	// (default 1ms).
	RetryBackoff time.Duration
	// RetryBackoffMax caps the doubled per-attempt sleep (default 50ms),
	// and the total time spent sleeping across one op's retries never
	// exceeds Timeout — an overloaded server makes a request slow, not
	// unboundedly slower than the timeout the caller asked for.
	RetryBackoffMax time.Duration
	// PingTimeout bounds one Ping round trip including any redial
	// (default 1s). Pings fail fast by design: a prober sweeping dead
	// members must not stall for DialTimeout on each.
	PingTimeout time.Duration
	// MaxFrame bounds accepted frame sizes (default DefaultMaxFrame).
	MaxFrame int
	// Spans, when non-nil, receives a root span for every traced call
	// this client issues — the client-side end of the per-hop records
	// the servers keep. Untraced calls never touch it.
	Spans *obs.SpanLog
	// OnView, when non-nil, receives the encoded cluster view a server
	// bounced a stale-epoch request with (RespView). The callback should
	// adopt it into whatever routes through this client (typically
	// cluster.AdoptEncodedView) and refresh SetEpoch — the bounced call
	// returns cluster.ErrWrongEpoch and its retry re-stamps the fresh
	// epoch. The view bytes are the callback's to keep. Each delivery
	// runs on its own goroutine, because the bounce surfaces inside a
	// coordinator request that may hold the very routing lock adoption
	// needs.
	OnView func(view []byte)
}

func (o *ClientOptions) normalize() {
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RetryOverload < 0 {
		o.RetryOverload = 0
	} else if o.RetryOverload == 0 {
		o.RetryOverload = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = time.Millisecond
	}
	if o.RetryBackoffMax <= 0 {
		o.RetryBackoffMax = 50 * time.Millisecond
	}
	if o.PingTimeout <= 0 {
		o.PingTimeout = time.Second
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
}

// Client is a pooled, pipelined wire-protocol client. It implements
// cluster.Remote, so a connected client (see RemoteNode) can join a
// coordinator's ring directly. Safe for concurrent use; concurrent
// requests on one connection interleave on the wire and resolve by id.
// A pool slot whose connection dies is redialed lazily on next use, so
// one reset or server restart poisons nothing permanently.
type Client struct {
	opts   ClientOptions
	addr   string
	conns  []atomic.Pointer[clientConn]
	mu     sync.Mutex // serializes redials and Close
	next   atomic.Uint64
	closed atomic.Bool

	// epoch, when nonzero, is stamped on data-plane requests (Get, Put,
	// Delete, Scan, Apply) so an elastic server can fence calls routed
	// under a stale membership view. Zero = unstamped (legacy peers).
	epoch atomic.Uint64

	metrics clientMetrics
}

// SetEpoch sets the membership view epoch stamped on this client's
// data-plane requests. Callers refresh it from their cluster's view
// callback (cluster.Config.OnViewChange / ClientOptions.OnView).
func (c *Client) SetEpoch(e uint64) { c.epoch.Store(e) }

// clientMetrics is the client's always-on instrumentation, adopted into
// a registry by RegisterMetrics.
type clientMetrics struct {
	retries obs.Counter // overload retries (withRetry re-attempts)
	redials obs.Counter // pool slots revived after a dead connection
}

// RegisterMetrics exports the client's counters into r under the
// bd_transport_client_* families. labels distinguishes clients sharing
// one registry — typically obs.Labels{"peer": addr}.
func (c *Client) RegisterMetrics(r *obs.Registry, labels obs.Labels) {
	r.CounterFunc("bd_transport_client_retries_total",
		"Requests re-sent after an overload shed.", labels, c.metrics.retries.Value)
	r.CounterFunc("bd_transport_client_redials_total",
		"Pool connections redialed after a failure.", labels, c.metrics.redials.Value)
}

// Dial connects a client pool to a server address. It retries refused
// connections inside DialTimeout, so callers may race server startup.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	opts.normalize()
	c := &Client{opts: opts, addr: addr, conns: make([]atomic.Pointer[clientConn], opts.Conns)}
	deadline := time.Now().Add(opts.DialTimeout)
	for i := 0; i < opts.Conns; i++ {
		cc, err := dialConn(addr, deadline, opts.MaxFrame)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns[i].Store(cc)
	}
	return c, nil
}

func dialConn(addr string, deadline time.Time, maxFrame int) (*clientConn, error) {
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("transport: dial %s: deadline exceeded", addr)
			}
			return nil, lastErr
		}
		conn, err := net.DialTimeout("tcp", addr, remain)
		if err == nil {
			cc := &clientConn{
				conn:     conn,
				bw:       bufio.NewWriterSize(conn, 64<<10),
				pending:  map[uint64]*waiter{},
				maxFrame: maxFrame,
			}
			go cc.readLoop()
			return cc, nil
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
}

// response is one matched reply. When f is non-nil the payload aliases
// a pooled frame: the receiver must copy anything it retains, then call
// release.
type response struct {
	op      Opcode
	payload []byte
	f       *frame
	err     error // connection-level failure
}

// release returns the response's pooled frame, if any. Idempotent.
func (r *response) release() {
	if r.f != nil {
		putFrame(r.f)
		r.f = nil
		r.payload = nil
	}
}

// waiter is one pooled in-flight request slot. The channel is reused
// across requests; the abandon protocol in roundTripFrame guarantees it
// is empty whenever the waiter returns to the pool.
type waiter struct {
	ch chan response
}

var waiterPool = sync.Pool{New: func() any { return &waiter{ch: make(chan response, 1)} }}

// timerPool recycles round-trip timeout timers. Stop/Reset without a
// drain is safe under the Go 1.23+ timer semantics this module requires.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if v := timerPool.Get(); v != nil {
		t := v.(*time.Timer)
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putTimer(t *time.Timer) {
	t.Stop()
	timerPool.Put(t)
}

// clientConn is one pooled connection: a locked writer and a read loop
// that resolves responses to waiters by frame id.
type clientConn struct {
	conn     net.Conn
	maxFrame int

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer
	// writers counts round trips between "about to take wmu" and "wrote
	// the frame": the writer that decrements it to zero flushes for the
	// whole group, coalescing pipelined requests into one syscall.
	writers atomic.Int32

	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]*waiter
	err     error // sticky connection error
}

func (cc *clientConn) readLoop() {
	br := bufio.NewReaderSize(cc.conn, 64<<10)
	for {
		id, op, f, err := readPooledFrame(br, cc.maxFrame)
		if err != nil {
			cc.fail(fmt.Errorf("transport: connection lost: %w", err))
			return
		}
		cc.mu.Lock()
		w := cc.pending[id]
		delete(cc.pending, id)
		cc.mu.Unlock()
		if w != nil {
			w.ch <- response{op: op, payload: f.b, f: f}
		} else {
			putFrame(f) // abandoned request (timeout): nobody will read it
		}
	}
}

// broken reports whether the connection has a sticky error.
func (cc *clientConn) broken() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

// fail marks the connection dead and resolves every waiter with err.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
	}
	pending := cc.pending
	cc.pending = map[uint64]*waiter{}
	cc.mu.Unlock()
	cc.conn.Close()
	for _, w := range pending {
		w.ch <- response{err: err}
	}
}

// abandon resolves a request whose caller is giving up (write error or
// timeout). If the waiter is still registered, removing it here means no
// one else will ever touch it and it can be pooled immediately. If it is
// gone, the remover (read loop or fail) removed it *before* sending, so
// a send is guaranteed — receive it, discard the late response, and only
// then pool the waiter. Without this ownership handshake a pooled waiter
// could deliver a stale response to its next user.
func (cc *clientConn) abandon(id uint64, w *waiter, err error) (response, error) {
	cc.mu.Lock()
	_, mine := cc.pending[id]
	delete(cc.pending, id)
	cc.mu.Unlock()
	if !mine {
		r := <-w.ch
		r.release()
	}
	waiterPool.Put(w)
	return response{}, err
}

// roundTripFrame issues one complete request frame (as built by
// beginRequest/finishFrame; the id field is assigned and patched here)
// and waits for its response. Takes ownership of f — it is released as
// soon as the bytes reach the bufio.Writer. The returned response's
// payload aliases a pooled frame the caller must release.
func (cc *clientConn) roundTripFrame(op Opcode, f *frame, timeout time.Duration) (response, error) {
	id := cc.nextID.Add(1)
	patchFrameID(f.b, id)
	w := waiterPool.Get().(*waiter)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		waiterPool.Put(w)
		putFrame(f)
		return response{}, err
	}
	cc.pending[id] = w
	cc.mu.Unlock()

	// Group flush: every writer increments before queueing on wmu; the
	// one that decrements to zero flushes for everyone. At pipeline
	// depth > 1 the frames written while a flush-eligible writer held
	// the lock ride out in one syscall (writev-style batching); at
	// depth 1 every write flushes, exactly as before.
	cc.writers.Add(1)
	cc.wmu.Lock()
	_, werr := cc.bw.Write(f.b)
	if cc.writers.Add(-1) == 0 && werr == nil {
		werr = cc.bw.Flush()
	}
	cc.wmu.Unlock()
	putFrame(f)
	if werr != nil {
		cc.fail(fmt.Errorf("transport: write: %w", werr))
		return cc.abandon(id, w, werr)
	}

	t := getTimer(timeout)
	select {
	case r := <-w.ch:
		putTimer(t)
		waiterPool.Put(w)
		if r.err != nil {
			return response{}, r.err
		}
		return r, nil
	case <-t.C:
		timerPool.Put(t) // fired: nothing to stop
		return cc.abandon(id, w, fmt.Errorf("%w (%s after %v)", ErrTimeout, opName(op), timeout))
	}
}

// callTrace is one client call's trace context. parent is the upstream
// span this call descends from (what the recorded span reports as its
// Parent); span is the call's own freshly minted id, which travels in
// the frame's parent field so the server's span parents onto this one.
// The zero value means untraced.
type callTrace struct {
	trace  uint64
	parent uint64
	span   uint64
	// epoch is the view epoch the request is stamped with (0 = none).
	epoch uint64
}

// newCallTrace mints the client-side span id for one traced call. Each
// retry attempt mints its own — every attempt is its own hop. A client
// with no span ring forwards the caller's span as the downstream parent
// instead: minting an id nobody records would leave a hole in the
// assembled chain where this hop should be.
func (c *Client) newCallTrace(trace, parent uint64) callTrace {
	ct := callTrace{trace: trace, parent: parent}
	if trace != 0 {
		if c.opts.Spans != nil {
			ct.span = obs.NewSpanID()
		} else {
			ct.span = parent
		}
	}
	return ct
}

// dataCallTrace is newCallTrace plus the epoch stamp data-plane ops
// carry. Minted inside each retry attempt, so a retry after a view
// bounce picks up the refreshed epoch.
func (c *Client) dataCallTrace(trace, parent uint64) callTrace {
	ct := c.newCallTrace(trace, parent)
	ct.epoch = c.epoch.Load()
	return ct
}

// roundTrip issues one request with the given payload — traced when
// ct.trace is nonzero — and waits for its response. The payload is
// copied into a pooled frame; use roundTripFrame with a caller-built
// frame to skip that copy.
func (cc *clientConn) roundTrip(ct callTrace, op Opcode, payload []byte, timeout time.Duration) (response, error) {
	f := newRequestFrame(op, ct, payload)
	return cc.roundTripFrame(op, f, timeout)
}

// newRequestFrame builds a complete request frame (id zero, patched at
// send time) carrying payload in a pooled buffer.
func newRequestFrame(op Opcode, ct callTrace, payload []byte) *frame {
	f := getFrame(frameHeadLen(ct.trace, ct.epoch) + len(payload))
	f.b = beginRequestExt(f.b[:0], op, ct.trace, ct.span, ct.epoch)
	f.b = append(f.b, payload...)
	f.b = finishFrame(f.b)
	return f
}

// frameHeadLen is the wire size of a request frame before its payload:
// length prefix + header, plus the trace and epoch extensions when
// present.
func frameHeadLen(trace, epoch uint64) int {
	n := 4 + frameOverhead
	if trace != 0 {
		n += tracedExtLen
	}
	if epoch != 0 {
		n += epochExtLen
	}
	return n
}

// cloneEntries rebases every entry's key and value out of the wire
// buffer they alias and into one fresh arena, in place.
func cloneEntries(entries []engine.Entry) {
	total := 0
	for i := range entries {
		total += len(entries[i].Key) + len(entries[i].Value)
	}
	if total == 0 {
		return
	}
	arena := make([]byte, 0, total)
	for i := range entries {
		arena = append(arena, entries[i].Key...)
		entries[i].Key = arena[len(arena)-len(entries[i].Key) : len(arena) : len(arena)]
		arena = append(arena, entries[i].Value...)
		entries[i].Value = arena[len(arena)-len(entries[i].Value) : len(arena) : len(arena)]
	}
}

func opName(op Opcode) string {
	if op&0x80 == 0 {
		op &^= opFlagTraced // a traced request is named by its bare opcode
	}
	switch op {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpBatch:
		return "batch"
	case OpStats:
		return "stats"
	case OpPing:
		return "ping"
	case OpTaskSubmit:
		return "task-submit"
	case OpTaskStatus:
		return "task-status"
	case OpShuffleFetch:
		return "shuffle-fetch"
	case OpTraceFetch:
		return "trace-fetch"
	case OpGossip:
		return "gossip"
	case OpMirror:
		return "mirror"
	case OpGetLocal:
		return "get-local"
	case OpMetricsFetch:
		return "metrics-fetch"
	case OpEventsFetch:
		return "events-fetch"
	default:
		return fmt.Sprintf("op(0x%02x)", byte(op))
	}
}

// pick selects the next pool connection round-robin, reviving the slot
// first if its connection has died.
func (c *Client) pick() (*clientConn, error) {
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	slot := int(c.next.Add(1)) % len(c.conns)
	cc := c.conns[slot].Load()
	if cc == nil || cc.broken() {
		return c.revive(slot)
	}
	return cc, nil
}

// revive redials one pool slot. Serialized so concurrent callers on a
// dead connection produce one dial, not a stampede; losers reuse the
// winner's connection.
func (c *Client) revive(slot int) (*clientConn, error) {
	return c.reviveWithin(slot, c.opts.DialTimeout)
}

// reviveWithin is revive with an explicit dial budget, so health probes
// can redial on a short leash while data ops keep the patient one.
func (c *Client) reviveWithin(slot int, budget time.Duration) (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	if cc := c.conns[slot].Load(); cc != nil && !cc.broken() {
		return cc, nil // another caller already revived it
	}
	cc, err := dialConn(c.addr, time.Now().Add(budget), c.opts.MaxFrame)
	if err != nil {
		return nil, err
	}
	c.metrics.redials.Inc()
	c.conns[slot].Store(cc)
	return cc, nil
}

// Healthy reports whether at least one pool connection is currently
// established and unbroken. It never dials: this is the passive
// connection-health signal — Ping is the active one.
func (c *Client) Healthy() bool {
	if c.closed.Load() {
		return false
	}
	for i := range c.conns {
		if cc := c.conns[i].Load(); cc != nil && !cc.broken() {
			return true
		}
	}
	return false
}

// Ping round-trips the health opcode, redialing a broken slot within
// PingTimeout rather than DialTimeout. It never retries on overload —
// the server answers pings from the read loop without an admission
// permit, so a failure here means the wire or the process, not load.
func (c *Client) Ping() error {
	if c.closed.Load() {
		return ErrClientClosed
	}
	slot := int(c.next.Add(1)) % len(c.conns)
	cc := c.conns[slot].Load()
	if cc == nil || cc.broken() {
		var err error
		if cc, err = c.reviveWithin(slot, c.opts.PingTimeout); err != nil {
			return err
		}
	}
	r, err := cc.roundTrip(callTrace{}, OpPing, nil, c.opts.PingTimeout)
	if err != nil {
		return err
	}
	defer r.release()
	if r.op == RespError {
		remoteErr, decodeErr := DecodeError(r.payload)
		if decodeErr != nil {
			return decodeErr
		}
		return remoteErr
	}
	if r.op != RespOK {
		return ErrMalformed
	}
	return nil
}

// call runs one round trip and maps error frames back to Go errors. A
// nonzero ct.trace rides the frame header and leaves a span in the
// configured span log. The payload is copied into a pooled request
// frame; hot paths that can encode straight into a frame use callFrame.
// The returned response's payload aliases a pooled frame — the caller
// must copy whatever it retains, then release it.
func (c *Client) call(ct callTrace, op Opcode, payload []byte) (response, error) {
	return c.callFrame(ct, op, newRequestFrame(op, ct, payload), len(payload))
}

// callFrame is call for a caller-built request frame (beginRequest +
// finishFrame with the same ct; the id is patched at send time). Takes
// ownership of f. reqBytes is the payload size, recorded on the span.
func (c *Client) callFrame(ct callTrace, op Opcode, f *frame, reqBytes int) (response, error) {
	cc, err := c.pick()
	if err != nil {
		putFrame(f)
		return response{}, err
	}
	var start time.Time
	if ct.trace != 0 && c.opts.Spans != nil {
		start = time.Now()
	}
	r, err := cc.roundTripFrame(op, f, c.opts.Timeout)
	if err == nil && r.op == RespError {
		var decodeErr error
		if err, decodeErr = DecodeError(r.payload); decodeErr != nil {
			err = decodeErr
		}
		r.release() // DecodeError copied the message into the error
		r = response{}
	}
	// A RespView to anything but a gossip exchange is the epoch fence
	// firing: the server refused a stale-stamped request and sent the
	// fresh view along. Hand the view to the adopter and surface
	// ErrWrongEpoch — withRetry re-stamps the refreshed epoch.
	if err == nil && r.op == RespView && op != OpGossip {
		if c.opts.OnView != nil && len(r.payload) > 0 {
			// Delivered on its own goroutine: the bounce fires inside a
			// coordinator request that may hold the routing lock the
			// adopter needs (Cluster.applyInto holds its view lock until
			// every sub-batch returns) — a synchronous callback would
			// deadlock. Out-of-order delivery is safe; view adoption
			// merges, so a stale view is a no-op.
			view := bytes.Clone(r.payload)
			go c.opts.OnView(view)
		}
		r.release()
		r = response{}
		err = cluster.ErrWrongEpoch
	}
	if !start.IsZero() {
		span := obs.Span{
			Trace:  ct.trace,
			ID:     ct.span,
			Parent: ct.parent,
			Name:   "client/" + opName(op),
			Peer:   c.addr,
			Start:  start,
			Dur:    time.Since(start),
			Bytes:  reqBytes,
		}
		if err != nil {
			span.Err = err.Error()
		}
		c.opts.Spans.Record(span)
	}
	if err != nil {
		return response{}, err
	}
	return r, nil
}

// withRetry runs fn, retrying on cluster.ErrOverload — and on
// cluster.ErrWrongEpoch, whose retry re-stamps the epoch the view
// bounce refreshed — with doubling backoff up to the configured attempt
// budget. The per-attempt sleep is capped at RetryBackoffMax, and the
// loop stops retrying once the elapsed wall clock (round trips +
// sleeps) would exceed Timeout, so a caller sees at worst ~2x Timeout —
// the budget-consuming attempt that was already in flight plus one
// more — not attempts x Timeout.
func (c *Client) withRetry(fn func() error) error {
	backoff := c.opts.RetryBackoff
	start := time.Now()
	for attempt := 0; ; attempt++ {
		err := fn()
		retryable := errors.Is(err, cluster.ErrOverload) || errors.Is(err, cluster.ErrWrongEpoch)
		if err == nil || !retryable || attempt >= c.opts.RetryOverload {
			return err
		}
		if backoff > c.opts.RetryBackoffMax {
			backoff = c.opts.RetryBackoffMax
		}
		if time.Since(start)+backoff > c.opts.Timeout {
			return err // retry budget exhausted: surface the overload
		}
		c.metrics.retries.Inc()
		time.Sleep(backoff)
		backoff *= 2
	}
}

// Get fetches one key from the remote shard.
func (c *Client) Get(key []byte) (value []byte, found bool, err error) {
	return c.GetTraced(0, 0, key)
}

// GetTraced is Get carrying distributed trace context (zero trace =
// untraced; parent is the calling hop's span id, 0 at the root).
func (c *Client) GetTraced(trace, parent uint64, key []byte) (value []byte, found bool, err error) {
	err = c.withRetry(func() error {
		r, err := c.call(c.dataCallTrace(trace, parent), OpGet, key)
		if err != nil {
			return err
		}
		defer r.release()
		if r.op != RespValue {
			return ErrMalformed
		}
		var v []byte
		v, found, err = DecodeValue(r.payload)
		value = bytes.Clone(v) // v aliases the pooled frame
		return err
	})
	return value, found, err
}

// Put writes one key.
func (c *Client) Put(key, value []byte) error {
	return c.PutTraced(0, 0, key, value)
}

// PutTraced is Put carrying distributed trace context (zero trace =
// untraced; parent is the calling hop's span id, 0 at the root).
func (c *Client) PutTraced(trace, parent uint64, key, value []byte) error {
	return c.withRetry(func() error {
		ct := c.dataCallTrace(trace, parent)
		// Encode straight into a pooled frame: no intermediate payload.
		n := 4 + len(key) + len(value)
		f := getFrame(frameHeadLen(ct.trace, ct.epoch) + n)
		f.b = beginRequestExt(f.b[:0], OpPut, ct.trace, ct.span, ct.epoch)
		f.b = finishFrame(EncodePut(f.b, key, value))
		r, err := c.callFrame(ct, OpPut, f, n)
		if err != nil {
			return err
		}
		defer r.release()
		if r.op != RespOK {
			return ErrMalformed
		}
		return nil
	})
}

// Delete removes one key.
func (c *Client) Delete(key []byte) error {
	return c.DeleteTraced(0, 0, key)
}

// DeleteTraced is Delete carrying distributed trace context.
func (c *Client) DeleteTraced(trace, parent uint64, key []byte) error {
	return c.withRetry(func() error {
		r, err := c.call(c.dataCallTrace(trace, parent), OpDelete, key)
		if err != nil {
			return err
		}
		defer r.release()
		if r.op != RespOK {
			return ErrMalformed
		}
		return nil
	})
}

// Scan returns up to limit entries with key >= start from the remote
// shard. Pages the server cut short for frame-size reasons are
// transparently continued, so a shorter-than-limit result always means
// the range is exhausted — the property the coordinator's k-way merge
// depends on. (Each continuation is its own server-side snapshot; a
// scan spanning pages can observe concurrent writes at page edges,
// like any paginated range read.)
func (c *Client) Scan(start []byte, limit int) ([]engine.Entry, error) {
	var all []engine.Entry
	for limit > len(all) {
		var page []engine.Entry
		var more bool
		err := c.withRetry(func() error {
			ct := c.dataCallTrace(0, 0)
			n := 4 + len(start)
			f := getFrame(frameHeadLen(0, ct.epoch) + n)
			f.b = beginRequestExt(f.b[:0], OpScan, 0, 0, ct.epoch)
			f.b = finishFrame(EncodeScan(f.b, start, limit-len(all)))
			r, err := c.callFrame(ct, OpScan, f, n)
			if err != nil {
				return err
			}
			defer r.release()
			if r.op != RespEntries {
				return ErrMalformed
			}
			page, more, err = DecodeEntries(r.payload)
			if err == nil {
				cloneEntries(page) // entries alias the pooled frame
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		all = append(all, page...)
		if !more || len(page) == 0 {
			break
		}
		last := page[len(page)-1].Key
		start = append(append([]byte(nil), last...), 0)
	}
	return all, nil
}

// Apply executes a batch on the remote with backpressure.
func (c *Client) Apply(ops []cluster.Op) (res []cluster.OpResult, err error) {
	return c.ApplyTraced(0, 0, ops)
}

// ApplyTraced is Apply carrying distributed trace context. The trace
// and this call's span id ride the frame header (not the batch payload)
// and the server re-stamps them onto the decoded ops, so a multi-tier
// backend keeps propagating — and parenting — the trace.
func (c *Client) ApplyTraced(trace, parent uint64, ops []cluster.Op) (res []cluster.OpResult, err error) {
	err = c.withRetry(func() error {
		res, err = c.batch(c.dataCallTrace(trace, parent), ops, false)
		return err
	})
	return res, err
}

// TryApply executes a batch under the remote's admission control. A shed
// batch returns cluster.ErrOverload, possibly with partial results; it
// is never retried here — propagating the shed signal is the point.
func (c *Client) TryApply(ops []cluster.Op) ([]cluster.OpResult, error) {
	return c.batch(c.dataCallTrace(0, 0), ops, true)
}

// TryApplyTraced is TryApply carrying distributed trace context.
func (c *Client) TryApplyTraced(trace, parent uint64, ops []cluster.Op) ([]cluster.OpResult, error) {
	return c.batch(c.dataCallTrace(trace, parent), ops, true)
}

func (c *Client) batch(ct callTrace, ops []cluster.Op, try bool) ([]cluster.OpResult, error) {
	// Encode the batch straight into a pooled, exactly-sized frame.
	n := encodedBatchLen(ops)
	f := getFrame(frameHeadLen(ct.trace, ct.epoch) + n)
	f.b = beginRequestExt(f.b[:0], OpBatch, ct.trace, ct.span, ct.epoch)
	f.b = finishFrame(EncodeBatch(f.b, ops, try))
	r, err := c.callFrame(ct, OpBatch, f, n)
	if err != nil {
		return nil, err
	}
	defer r.release()
	if r.op != RespResults {
		return nil, ErrMalformed
	}
	res, execErr, decodeErr := DecodeResults(r.payload)
	if decodeErr != nil {
		return nil, decodeErr
	}
	// Result values alias the pooled response frame; move them into one
	// arena so releasing the frame can't corrupt what the caller keeps.
	total := 0
	for i := range res {
		total += len(res[i].Value)
	}
	if total > 0 {
		arena := make([]byte, 0, total)
		for i := range res {
			if len(res[i].Value) > 0 {
				arena = append(arena, res[i].Value...)
				res[i].Value = arena[len(arena)-len(res[i].Value) : len(arena) : len(arena)]
			}
		}
	}
	return res, execErr
}

// Gossip round-trips one anti-entropy membership exchange: view is
// this side's encoded cluster view, and the reply is the peer's merged
// view — or nil when the peer found the digests already in agreement.
// Overload sheds are retried, though the server answers gossip from its
// read loop precisely so load cannot starve convergence.
func (c *Client) Gossip(view []byte) (merged []byte, err error) {
	err = c.withRetry(func() error {
		r, err := c.call(callTrace{}, OpGossip, view)
		if err != nil {
			return err
		}
		defer r.release()
		if r.op != RespView {
			return ErrMalformed
		}
		if len(r.payload) > 0 {
			merged = bytes.Clone(r.payload) // payload aliases the pooled frame
		}
		return nil
	})
	return merged, err
}

// ApplyLocal lands one store-only write on the remote member: no
// replica fan-out on the far side. Replica mirrors and hint replays
// (migration=false) always apply; migration copies (migration=true)
// carry the epoch they were planned under and come back as
// cluster.ErrWrongEpoch when the destination has moved on.
func (c *Client) ApplyLocal(op cluster.Op, migration bool, epoch uint64) error {
	return c.withRetry(func() error {
		n := encodedMirrorLen(op, migration)
		f := getFrame(frameHeadLen(0, 0) + n)
		f.b = beginRequest(f.b[:0], OpMirror, 0, 0)
		f.b = finishFrame(EncodeMirror(f.b, op, migration, epoch))
		r, err := c.callFrame(callTrace{}, OpMirror, f, n)
		if err != nil {
			return err
		}
		defer r.release()
		if r.op != RespOK {
			return ErrMalformed
		}
		return nil
	})
}

// GetLocal reads one key from the remote member's own store with no
// server-side routing — the read twin of ApplyLocal. Member-to-member
// reads (replica fallbacks, migration-lag reads) use it because the
// caller has already resolved ownership; letting the receiver re-route
// by a ring that may disagree mid-membership-change turns two members
// into a forwarding cycle. Unstamped: the answer comes from whatever the
// member holds, which is exactly what a fallback read wants regardless
// of epoch.
func (c *Client) GetLocal(key []byte) (value []byte, found bool, err error) {
	err = c.withRetry(func() error {
		r, err := c.call(callTrace{}, OpGetLocal, key)
		if err != nil {
			return err
		}
		defer r.release()
		if r.op != RespValue {
			return ErrMalformed
		}
		var v []byte
		v, found, err = DecodeValue(r.payload)
		value = bytes.Clone(v) // v aliases the pooled frame
		return err
	})
	return value, found, err
}

// Stats snapshots the remote server's cluster counters.
func (c *Client) Stats() (st cluster.Stats, err error) {
	err = c.withRetry(func() error {
		r, err := c.call(callTrace{}, OpStats, nil)
		if err != nil {
			return err
		}
		defer r.release()
		if r.op != RespStats {
			return ErrMalformed
		}
		st, err = DecodeStats(r.payload)
		return err
	})
	return st, err
}

// SubmitTask submits an opaque analytics task spec to the remote
// executor and returns the executor-local task id. Overload sheds are
// retried like the data-plane ops — a shed submit never started a task,
// so the retry cannot duplicate work.
func (c *Client) SubmitTask(spec []byte) (id uint64, err error) {
	return c.SubmitTaskTraced(0, spec)
}

// SubmitTaskTraced is SubmitTask carrying a distributed trace id, so an
// analytics job's submits show up in each executor's span log under the
// job's one trace.
func (c *Client) SubmitTaskTraced(trace uint64, spec []byte) (id uint64, err error) {
	err = c.withRetry(func() error {
		r, err := c.call(c.newCallTrace(trace, 0), OpTaskSubmit, spec)
		if err != nil {
			return err
		}
		defer r.release()
		if r.op != RespTask {
			return ErrMalformed
		}
		id, err = DecodeTaskID(r.payload)
		return err
	})
	return id, err
}

// TaskStatus polls one task. taskErr is the remote task's execution
// failure (nil while running or on success); err reports the poll
// itself failing (wire down, unknown task).
func (c *Client) TaskStatus(id uint64) (done bool, taskErr, err error) {
	err = c.withRetry(func() error {
		r, err := c.call(callTrace{}, OpTaskStatus, EncodeTaskID(nil, id))
		if err != nil {
			return err
		}
		defer r.release()
		if r.op != RespTaskStatus {
			return ErrMalformed
		}
		done, taskErr, err = DecodeTaskStatus(r.payload)
		return err
	})
	return done, taskErr, err
}

// ShuffleFetch pulls one completed task's output partition, paging
// through frame-sized chunks until the server reports the end.
func (c *Client) ShuffleFetch(task uint64, part uint32) ([]byte, error) {
	return c.ShuffleFetchTraced(0, task, part)
}

// ShuffleFetchTraced is ShuffleFetch carrying a distributed trace id,
// so a reduce task's cross-node fetches join the job's trace.
func (c *Client) ShuffleFetchTraced(trace, task uint64, part uint32) ([]byte, error) {
	var all []byte
	for {
		var more bool
		err := c.withRetry(func() error {
			r, err := c.call(c.newCallTrace(trace, 0), OpShuffleFetch, EncodeShuffleFetch(nil, task, part, uint32(len(all))))
			if err != nil {
				return err
			}
			defer r.release()
			if r.op != RespChunk {
				return ErrMalformed
			}
			var chunk []byte
			chunk, more, err = DecodeChunk(r.payload)
			if err == nil {
				all = append(all, chunk...) // copies out of the pooled frame
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		if !more {
			return all, nil
		}
	}
}

// FetchSpans pulls every span the remote process retains for one trace
// id (OpTraceFetch) — the collector side of distributed trace assembly.
// A remote with nothing recorded returns an empty set, not an error.
// The fetch itself is untraced so collection never pollutes the trace
// it collects.
func (c *Client) FetchSpans(trace uint64) (spans []obs.Span, err error) {
	err = c.withRetry(func() error {
		r, err := c.call(callTrace{}, OpTraceFetch, EncodeTaskID(nil, trace))
		if err != nil {
			return err
		}
		defer r.release()
		if r.op != RespSpans {
			return ErrMalformed
		}
		spans, err = DecodeSpans(r.payload)
		return err
	})
	return spans, err
}

// FetchMetrics pulls the remote process's full registry snapshot
// (OpMetricsFetch) — exact histogram buckets and counters, not float
// summaries, so the federation can merge without rounding. The payload
// aliases a pooled frame, so the decode (which copies into fresh
// structs) happens before release.
func (c *Client) FetchMetrics() (snap *obs.RegistrySnapshot, err error) {
	err = c.withRetry(func() error {
		r, err := c.call(callTrace{}, OpMetricsFetch, nil)
		if err != nil {
			return err
		}
		defer r.release()
		if r.op != RespMetrics {
			return ErrMalformed
		}
		snap, err = obs.DecodeSnapshot(r.payload)
		return err
	})
	return snap, err
}

// FetchEvents pulls the remote process's cluster event ring
// (OpEventsFetch), oldest first. A remote with no event log returns an
// empty timeline, not an error.
func (c *Client) FetchEvents() (events []obs.Event, err error) {
	err = c.withRetry(func() error {
		r, err := c.call(callTrace{}, OpEventsFetch, nil)
		if err != nil {
			return err
		}
		defer r.release()
		if r.op != RespEvents {
			return ErrMalformed
		}
		events, err = obs.DecodeEvents(r.payload)
		return err
	})
	return events, err
}

// Close tears down the pool. In-flight requests resolve with a
// connection error.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.mu.Lock() // no redial can race the teardown
	defer c.mu.Unlock()
	for i := range c.conns {
		if cc := c.conns[i].Load(); cc != nil {
			cc.fail(ErrClientClosed)
		}
	}
	return nil
}
