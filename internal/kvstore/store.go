// Package kvstore is a log-structured merge-tree key-value store — the
// repository's substitute for the paper's HBase 0.94.5 stack serving the
// "Cloud OLTP" workloads (DESIGN.md §1). Writes append to a WAL and a
// lock-free skiplist memtable; full memtables flush to immutable sorted
// runs with Bloom filters; reads pin an immutable version of the run set
// with one atomic load and proceed without any store-wide lock while
// flush and compaction install new versions behind them. The run read
// path goes through a sharded-LRU block cache, and compaction is
// pluggable: size-tiered full rewrites or leveled merges (see
// compaction.go). These are the structures whose access patterns define
// the Read/Write/Scan characterization in the paper's Figures 2-6.
package kvstore

import (
	"bytes"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// bloomProbeOff derives a stable pseudo-random offset for the modeled
// Bloom-filter bit-array access of a key within a run's region.
func bloomProbeOff(key []byte, size uint64) uint64 {
	h1, _ := bloomHashes(key)
	if size == 0 {
		return 0
	}
	return h1 % size
}

// Options configures a Store.
type Options struct {
	// MemtableBytes is the flush threshold (default 1 MiB).
	MemtableBytes int
	// BloomBitsPerKey sizes the per-run Bloom filters (default 10; 0 keeps
	// the default, negative disables the filters — used by the ablation).
	BloomBitsPerKey int
	// MaxRuns triggers compaction when exceeded (default 6). Under
	// SizeTiered it bounds the total run count; under Leveled it bounds
	// the L0 flush-run count.
	MaxRuns int
	// Compaction selects the run-folding policy (default SizeTiered).
	Compaction CompactionPolicy
	// BlockCacheBytes sizes the sharded-LRU block cache on the run read
	// path (default 4 MiB; negative disables the cache).
	BlockCacheBytes int
	// CPU attaches the store to a characterization context (may be nil).
	CPU *sim.CPU
}

func (o *Options) normalize() {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 1 << 20
	}
	if o.BloomBitsPerKey == 0 {
		o.BloomBitsPerKey = 10
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 6
	}
	if o.BlockCacheBytes == 0 {
		o.BlockCacheBytes = 4 << 20
	}
}

// Stats counts store activity.
type Stats struct {
	Puts, Gets, Deletes, Scans uint64
	ScannedEntries             uint64
	Flushes, Compactions       uint64
	BloomNegative, RunsProbed  uint64
	WALBytes                   uint64
	// BlockCacheHits and BlockCacheMisses count run-block accesses
	// through the block cache (zero when the cache is disabled).
	BlockCacheHits, BlockCacheMisses uint64
}

// counters is the internal, atomically-updated form of Stats — the read
// path increments them without holding any lock.
type counters struct {
	puts, gets, deletes, scans atomic.Uint64
	scannedEntries             atomic.Uint64
	flushes, compactions       atomic.Uint64
	bloomNegative, runsProbed  atomic.Uint64
	walBytes                   atomic.Uint64
	cacheHits, cacheMisses     atomic.Uint64
}

// Store is the LSM store. It is safe for concurrent use: writers
// serialize on writeMu, while readers are lock-free — they pin the
// current version with one atomic load and never block on writes,
// flushes, or compactions.
type Store struct {
	opts    Options
	writeMu sync.Mutex // serializes Put/Delete/WriteBatch/Flush/compaction
	cur     atomic.Pointer[version]
	seq     atomic.Uint64 // global write sequence (record stamps)
	// visible is the readers' horizon: it advances to seq only after a
	// write or a whole WriteBatch has fully applied, so lock-free
	// readers never observe half a batch (records above the horizon are
	// skipped by the memtable's version chains).
	visible atomic.Uint64
	ct      counters
	cache   *blockCache

	cpu         *sim.CPU
	walCode     *sim.CodeRegion
	memCode     *sim.CodeRegion
	readCode    *sim.CodeRegion
	scanCode    *sim.CodeRegion
	walRegion   sim.DataRegion
	memRegion   sim.DataRegion
	cacheRegion sim.DataRegion
	rs          atomic.Uint64
}

// Open creates an empty store.
func Open(opts Options) *Store {
	opts.normalize()
	cpu := opts.CPU
	s := &Store{
		opts:      opts,
		cache:     newBlockCache(opts.BlockCacheBytes),
		cpu:       cpu,
		walCode:   cpu.NewCodeRegion("kvstore.wal", 128<<10),
		memCode:   cpu.NewCodeRegion("kvstore.memtable", 192<<10),
		readCode:  cpu.NewCodeRegion("kvstore.read", 256<<10),
		scanCode:  cpu.NewCodeRegion("kvstore.scan", 160<<10),
		walRegion: cpu.Alloc("kvstore.walbuf", 8<<20),
		memRegion: cpu.Alloc("kvstore.membuf", uint64(opts.MemtableBytes)*2+4096),
	}
	if s.cache != nil {
		s.cacheRegion = cpu.Alloc("kvstore.blockcache", uint64(opts.BlockCacheBytes))
	}
	s.cur.Store(newVersion())
	s.rs.Store(0x6c62272e07bb0142)
	return s
}

// nextRand is a contention-free pseudo-random step shared by read and
// write paths: a plain atomic counter advanced by the golden-ratio
// increment, finalized splitmix64-style. Unlike a CAS-retry xorshift it
// never spins — every caller succeeds in one fetch-add.
func (s *Store) nextRand() uint64 {
	x := s.rs.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// codeOff picks a pseudo-random window offset; uninstrumented stores
// skip the draw so the hot read path stays free of shared-counter
// traffic.
func (s *Store) codeOff(r *sim.CodeRegion) uint64 {
	if s.cpu == nil {
		return 0
	}
	return s.nextRand() % r.Size()
}

// Put inserts or overwrites a key.
func (s *Store) Put(key, value []byte) {
	s.write(key, value, false)
}

// Delete removes a key (tombstone write).
func (s *Store) Delete(key []byte) {
	s.write(key, nil, true)
}

// BatchOp is one write inside a WriteBatch.
type BatchOp struct {
	Key   []byte
	Value []byte // ignored when Delete is set
	// Delete writes a tombstone instead of a value.
	Delete bool
}

// WriteBatch applies a group of writes under one writer-lock
// acquisition — the group-commit fast path the cluster's shard workers
// ride on (cluster.Node coalesces replica-free write runs into it).
// The batch is atomic to readers: the visibility horizon advances only
// after every record is in place, so a concurrent Get or Scan sees all
// of the batch or none of it.
func (s *Store) WriteBatch(ops []BatchOp) {
	if len(ops) == 0 {
		return
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	for _, op := range ops {
		if op.Delete {
			s.applyLocked(op.Key, nil, true)
		} else {
			s.applyLocked(op.Key, op.Value, false)
		}
	}
	s.visible.Store(s.seq.Load())
	s.maybeFlushLocked()
}

func (s *Store) write(key, value []byte, tomb bool) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.applyLocked(key, value, tomb)
	s.visible.Store(s.seq.Load())
	s.maybeFlushLocked()
}

// applyLocked performs one write against the current version's active
// memtable. It never flushes — a flush mid-batch would freeze records
// that are not yet visible (and drop the older chain versions readers
// below the horizon still need); callers flush after advancing the
// horizon. Caller holds writeMu.
func (s *Store) applyLocked(key, value []byte, tomb bool) {
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	if tomb {
		s.ct.deletes.Add(1)
	} else {
		s.ct.puts.Add(1)
	}
	// RPC decode + WAL append. The generous integer budget models the
	// HBase client/server request path (protobuf decode, region lookup,
	// MVCC bookkeeping), which dominates instructions per operation.
	rec := len(k) + len(v) + 12
	s.cpu.Code(s.walCode, s.codeOff(s.walCode), 640)
	s.cpu.StoreR(s.walRegion, s.ct.walBytes.Load()%s.walRegion.Size, rec)
	s.cpu.IntOps(420)
	s.cpu.Branches(95)
	s.cpu.FPOps(4)
	s.ct.walBytes.Add(uint64(rec))
	// Memtable insert. The upper skiplist levels stay cache-resident; only
	// the final descent touches cold nodes, so the scattered-probe charge
	// is capped.
	ver := s.cur.Load()
	probes := ver.mem.put(k, v, tomb, s.seq.Add(1))
	if probes > 8 {
		probes = 8
	}
	s.cpu.Code(s.memCode, s.codeOff(s.memCode), 640)
	s.chargeProbes(s.memRegion, probes, len(k)+8)
	s.cpu.IntOps(180)
	s.cpu.Branches(40)
	s.cpu.StoreR(s.memRegion, uint64(ver.mem.bytes())%s.memRegion.Size, len(k)+len(v)+16)
}

// maybeFlushLocked flushes a full memtable. Caller holds writeMu and
// has advanced the visibility horizon, so every frozen record is
// visible. The memtable may overshoot MemtableBytes by one batch.
func (s *Store) maybeFlushLocked() {
	if s.cur.Load().mem.bytes() >= s.opts.MemtableBytes {
		s.flushLocked()
	}
}

// chargeProbes models pointer-chasing probe loads scattered in a region.
func (s *Store) chargeProbes(r sim.DataRegion, probes, width int) {
	if s.cpu == nil {
		return
	}
	for i := 0; i < probes; i++ {
		s.cpu.LoadR(r, s.nextRand()%maxU64(r.Size, 1), width)
	}
	s.cpu.IntOps(6 * probes)
	s.cpu.Branches(2 * probes)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// readBlock routes one modeled block access through the block cache: a
// hit touches the hot cache arena; a miss streams the block in from the
// run and admits it — the cost difference the characterization (and the
// BlockCacheHits/Misses counters) surface.
func (s *Store) readBlock(t *sstable, block int) {
	off, n := t.blockSpan(block)
	if s.cache == nil {
		s.cpu.LoadR(t.region, off, n)
		return
	}
	if s.cache.touch(blockKey{table: t.id, block: block}, n) {
		s.ct.cacheHits.Add(1)
		if s.cpu != nil {
			s.cpu.LoadR(s.cacheRegion, (t.id*8191+uint64(block))*64%maxU64(s.cacheRegion.Size, 1), 128)
			s.cpu.IntOps(40)
			s.cpu.Branches(8)
		}
		return
	}
	s.ct.cacheMisses.Add(1)
	if s.cpu != nil {
		s.cpu.LoadR(t.region, off, n)
		s.cpu.StoreR(s.cacheRegion, s.nextRand()%maxU64(s.cacheRegion.Size, 1), 64)
		s.cpu.IntOps(90)
		s.cpu.Branches(14)
	}
}

// Get returns the value for key. The read path is lock-free: it pins
// the current version with one atomic load and never contends with
// writers, flushes, or compactions. The version must be loaded before
// the horizon: any run already in the version was flushed below an
// earlier horizon, so run rows never need sequence filtering.
//
// The returned slice aliases the store's immutable internal record
// (memtable value chain or run row) rather than a copy — the
// zero-copy read contract. Callers must treat it as read-only; it
// stays valid indefinitely, since overwrites create new records and
// the garbage collector keeps referenced bytes alive.
func (s *Store) Get(key []byte) ([]byte, bool) {
	v := s.cur.Load()
	return s.getAt(v, s.visible.Load(), key)
}

// getAt serves a point read against a pinned version at a sequence
// horizon.
func (s *Store) getAt(v *version, seq uint64, key []byte) ([]byte, bool) {
	s.ct.gets.Add(1)
	// Request path: RPC decode, region/row-lock lookup, result encode.
	s.cpu.Code(s.readCode, s.codeOff(s.readCode), 768)
	s.cpu.IntOps(620)
	s.cpu.Branches(140)
	s.cpu.FPOps(5)
	val, tomb, ok, probes := v.mem.get(key, seq)
	if probes > 4 {
		probes = 4
	}
	s.chargeProbes(s.memRegion, probes, len(key)+8)
	if ok {
		if tomb {
			return nil, false
		}
		// The record chain is immutable after publication (overwrites
		// push new records), so the value can be returned without a
		// defensive copy — the read path's zero-copy contract.
		return val, true
	}
	// L0 newest-first: flush output runs may overlap.
	for i := len(v.levels[0]) - 1; i >= 0; i-- {
		if r, found, dead := s.probeRun(v.levels[0][i], key); found {
			if dead {
				return nil, false
			}
			return r, true
		}
	}
	// Deep levels are disjoint: at most one candidate run per level.
	for lvl := 1; lvl < len(v.levels); lvl++ {
		t := findRun(v.levels[lvl], key)
		if t == nil {
			continue
		}
		if r, found, dead := s.probeRun(t, key); found {
			if dead {
				return nil, false
			}
			return r, true
		}
	}
	return nil, false
}

// probeRun checks one run for key: Bloom filter, block-index search,
// then a block read through the cache.
func (s *Store) probeRun(t *sstable, key []byte) (val []byte, found, dead bool) {
	// Bloom filter check: one or two cache lines of the bit array.
	s.cpu.LoadR(t.region, bloomProbeOff(key, t.region.Size), 16)
	s.cpu.IntOps(24)
	s.cpu.Branches(4)
	if s.opts.BloomBitsPerKey > 0 && !t.bloom.mayContain(key) {
		s.ct.bloomNegative.Add(1)
		return nil, false, false
	}
	s.ct.runsProbed.Add(1)
	r, idx, ok, probes := t.find(key)
	// The run's block index stays hot in the Java heap; only the last
	// few search steps touch cold index nodes.
	if probes > 3 {
		probes = 3
	}
	s.chargeProbes(t.region, probes, len(key)+16)
	// The candidate block is read (through the cache) whether or not the
	// key is ultimately present — the Bloom filter already passed. find's
	// terminal index names the block the key would live in.
	block := 0
	if idx < len(t.rows) {
		block = idx / blockRows
	} else if n := t.blocks(); n > 0 {
		block = n - 1
	}
	s.readBlock(t, block)
	if !ok {
		return nil, false, false
	}
	if r.tomb {
		return nil, true, true
	}
	// Run rows are immutable; return the value without a copy.
	return r.val, true, false
}

// Scan returns up to limit live entries with key >= start, in key
// order. Like Get it pins one version and the visibility horizon at
// entry, so a scan is point-in-time: it never observes a torn run set,
// half a WriteBatch, or writes that land mid-iteration.
func (s *Store) Scan(start []byte, limit int) []Entry {
	v := s.cur.Load()
	return s.scanAt(nil, v, s.visible.Load(), start, limit)
}

// AppendScan is Scan appending into dst (reusing its capacity): the
// allocation-free form for callers that hold a scratch entry buffer.
// Appended keys and values are still fresh copies — only the slice
// headers reuse dst.
func (s *Store) AppendScan(dst []Entry, start []byte, limit int) []Entry {
	v := s.cur.Load()
	return s.scanAt(dst, v, s.visible.Load(), start, limit)
}

// scanCursor walks one sorted source (memtable or run) emitting rows
// visible at the pinned sequence.
type scanCursor struct {
	cur  row
	ok   bool
	next func() (row, bool)
}

// scanAt merges every source of a pinned version at a sequence horizon,
// appending up to limit entries to dst.
func (s *Store) scanAt(dst []Entry, v *version, seq uint64, start []byte, limit int) []Entry {
	s.ct.scans.Add(1)
	s.cpu.Code(s.scanCode, s.codeOff(s.scanCode), 640)
	s.cpu.IntOps(520)
	s.cpu.Branches(120)
	s.cpu.FPOps(1)

	var cs []*scanCursor
	// Memtable cursor. Skiplist nodes are heap-scattered.
	node := v.mem.seek(start)
	memNext := func() (row, bool) {
		for node != nil {
			rec := node.resolve(seq)
			n := node
			node = node.next[0].Load()
			if rec == nil {
				continue // written after the snapshot horizon
			}
			if s.cpu != nil {
				s.cpu.LoadR(s.memRegion, s.nextRand()%s.memRegion.Size, len(n.key)+len(rec.val)+16)
			}
			return row{key: n.key, val: rec.val, seq: rec.seq, tomb: rec.tomb}, true
		}
		return row{}, false
	}
	cs = append(cs, &scanCursor{next: memNext})
	for _, level := range v.levels {
		for _, t := range level {
			tt := t
			pos := t.seek(start)
			// The seek itself binary-searches the run's block index.
			s.chargeProbes(tt.region, 5, 24)
			lastBlock := -1
			n := func() (row, bool) {
				if pos >= len(tt.rows) {
					return row{}, false
				}
				r := tt.rows[pos]
				// Sequential block reads through the cache at the cursor.
				if b := pos / blockRows; b != lastBlock {
					lastBlock = b
					s.readBlock(tt, b)
				}
				s.cpu.IntOps(8)
				s.cpu.Branches(2)
				pos++
				return r, true
			}
			cs = append(cs, &scanCursor{next: n})
		}
	}
	for _, c := range cs {
		c.cur, c.ok = c.next()
	}
	out, base := dst, len(dst)
	scanned := 0
	for len(out)-base < limit {
		best := -1
		for i, c := range cs {
			if !c.ok {
				continue
			}
			if best == -1 ||
				bytes.Compare(c.cur.key, cs[best].cur.key) < 0 ||
				(bytes.Equal(c.cur.key, cs[best].cur.key) && c.cur.seq > cs[best].cur.seq) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		r := cs[best].cur
		key := r.key
		// Advance every cursor past this key (older sequences lose).
		for _, c := range cs {
			for c.ok && bytes.Equal(c.cur.key, key) {
				c.cur, c.ok = c.next()
				scanned++
			}
		}
		if r.tomb {
			continue
		}
		out = append(out, Entry{
			Key:   append([]byte(nil), key...),
			Value: append([]byte(nil), r.val...),
		})
		s.cpu.IntOps(55)
		s.cpu.Branches(12)
		s.cpu.FPOps(1)
	}
	s.ct.scannedEntries.Add(uint64(scanned))
	return out
}

// Snapshot is a consistent point-in-time read view: Get and Scan resolve
// exactly the writes sequenced before the snapshot was taken, regardless
// of later writes, flushes, or compactions (the pinned version's runs
// are immutable and memtable records carry sequence numbers).
type Snapshot struct {
	s   *Store
	v   *version
	seq uint64
}

// Snapshot pins the current version and sequence horizon. Acquisition
// briefly serializes with writers so the horizon is exact; reads through
// the snapshot are lock-free.
func (s *Store) Snapshot() *Snapshot {
	s.writeMu.Lock()
	v := s.cur.Load()
	seq := s.visible.Load()
	s.writeMu.Unlock()
	return &Snapshot{s: s, v: v, seq: seq}
}

// Get returns the key's value as of the snapshot.
func (sn *Snapshot) Get(key []byte) ([]byte, bool) {
	return sn.s.getAt(sn.v, sn.seq, key)
}

// Scan returns up to limit live entries as of the snapshot.
func (sn *Snapshot) Scan(start []byte, limit int) []Entry {
	return sn.s.scanAt(nil, sn.v, sn.seq, start, limit)
}

// AppendScan is Scan appending into dst (reusing its capacity).
func (sn *Snapshot) AppendScan(dst []Entry, start []byte, limit int) []Entry {
	return sn.s.scanAt(dst, sn.v, sn.seq, start, limit)
}

// Release drops the snapshot's pin (the garbage collector reclaims the
// superseded runs once no snapshot references them).
func (sn *Snapshot) Release() { sn.v = nil }

// Flush forces the memtable into an immutable run.
func (s *Store) Flush() {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.flushLocked()
}

// flushLocked freezes the active memtable into an L0 run and installs a
// fresh version. Caller holds writeMu; readers pinned on the old version
// keep reading the frozen memtable.
func (s *Store) flushLocked() {
	v := s.cur.Load()
	if v.mem.count() == 0 {
		return
	}
	rows := v.mem.rows()
	t := buildSSTable(rows, s.opts.BloomBitsPerKey, s.cpu)
	// Sequential write of the run; HFile blocks are compressed on flush,
	// so the charged I/O is a third of the logical bytes.
	s.cpu.Code(s.walCode, s.codeOff(s.walCode), 512)
	s.cpu.StoreR(t.region, 0, t.bytes/3)
	nv := v.clone()
	nv.mem = newMemtable()
	nv.levels[0] = append(nv.levels[0], t)
	s.cur.Store(nv)
	s.ct.flushes.Add(1)
	s.maybeCompactLocked()
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Puts:             s.ct.puts.Load(),
		Gets:             s.ct.gets.Load(),
		Deletes:          s.ct.deletes.Load(),
		Scans:            s.ct.scans.Load(),
		ScannedEntries:   s.ct.scannedEntries.Load(),
		Flushes:          s.ct.flushes.Load(),
		Compactions:      s.ct.compactions.Load(),
		BloomNegative:    s.ct.bloomNegative.Load(),
		RunsProbed:       s.ct.runsProbed.Load(),
		WALBytes:         s.ct.walBytes.Load(),
		BlockCacheHits:   s.ct.cacheHits.Load(),
		BlockCacheMisses: s.ct.cacheMisses.Load(),
	}
}

// LevelBytes returns the logical byte size of each LSM level in the
// current version — the per-level storage distribution the paper's
// workload characterization plots, surfaced live for metrics scrapes.
func (s *Store) LevelBytes() []uint64 {
	v := s.cur.Load()
	out := make([]uint64, len(v.levels))
	for i := range v.levels {
		out[i] = uint64(v.levelBytes(i))
	}
	return out
}

// Runs returns the current immutable run count across all levels (for
// tests/ablation).
func (s *Store) Runs() int {
	return s.cur.Load().runCount()
}

// LevelRuns returns the per-level run counts of the current version.
func (s *Store) LevelRuns() []int {
	v := s.cur.Load()
	out := make([]int, len(v.levels))
	for i, l := range v.levels {
		out[i] = len(l)
	}
	return out
}

// Compaction reports the configured policy.
func (s *Store) Compaction() CompactionPolicy { return s.opts.Compaction }

// Len returns the number of live keys (linear; intended for tests).
func (s *Store) Len() int {
	return len(s.Scan(nil, math.MaxInt32))
}
