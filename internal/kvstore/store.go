// Package kvstore is a log-structured merge-tree key-value store — the
// repository's substitute for the paper's HBase 0.94.5 stack serving the
// "Cloud OLTP" workloads (DESIGN.md §1). Writes append to a WAL and a
// skiplist memtable; full memtables flush to immutable sorted runs with
// Bloom filters; reads consult the memtable and then runs newest-first;
// scans k-way-merge all sources; size-tiered compaction folds runs
// together. These are the structures whose access patterns define the
// Read/Write/Scan characterization in the paper's Figures 2-6.
package kvstore

import (
	"bytes"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// bloomProbeOff derives a stable pseudo-random offset for the modeled
// Bloom-filter bit-array access of a key within a run's region.
func bloomProbeOff(key []byte, size uint64) uint64 {
	h1, _ := bloomHashes(key)
	if size == 0 {
		return 0
	}
	return h1 % size
}

// Options configures a Store.
type Options struct {
	// MemtableBytes is the flush threshold (default 1 MiB).
	MemtableBytes int
	// BloomBitsPerKey sizes the per-run Bloom filters (default 10; 0 keeps
	// the default, negative disables the filters — used by the ablation).
	BloomBitsPerKey int
	// MaxRuns triggers a full compaction when exceeded (default 6).
	MaxRuns int
	// CPU attaches the store to a characterization context (may be nil).
	CPU *sim.CPU
}

func (o *Options) normalize() {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 1 << 20
	}
	if o.BloomBitsPerKey == 0 {
		o.BloomBitsPerKey = 10
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 6
	}
}

// Stats counts store activity.
type Stats struct {
	Puts, Gets, Deletes, Scans uint64
	ScannedEntries             uint64
	Flushes, Compactions       uint64
	BloomNegative, RunsProbed  uint64
	WALBytes                   uint64
}

// Store is the LSM store. It is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	statMu sync.Mutex // guards st under the read lock
	opts   Options
	mem    *memtable
	runs   []*sstable // ordered oldest → newest
	st     Stats

	cpu       *sim.CPU
	walCode   *sim.CodeRegion
	memCode   *sim.CodeRegion
	readCode  *sim.CodeRegion
	scanCode  *sim.CodeRegion
	walRegion sim.DataRegion
	memRegion sim.DataRegion
	rs        atomic.Uint64
}

// Open creates an empty store.
func Open(opts Options) *Store {
	opts.normalize()
	cpu := opts.CPU
	s := &Store{
		opts:      opts,
		mem:       newMemtable(),
		cpu:       cpu,
		walCode:   cpu.NewCodeRegion("kvstore.wal", 128<<10),
		memCode:   cpu.NewCodeRegion("kvstore.memtable", 192<<10),
		readCode:  cpu.NewCodeRegion("kvstore.read", 256<<10),
		scanCode:  cpu.NewCodeRegion("kvstore.scan", 160<<10),
		walRegion: cpu.Alloc("kvstore.walbuf", 8<<20),
		memRegion: cpu.Alloc("kvstore.membuf", uint64(opts.MemtableBytes)*2+4096),
	}
	s.rs.Store(0x6c62272e07bb0142)
	return s
}

// nextRand is a lock-free xorshift step shared by read and write paths.
func (s *Store) nextRand() uint64 {
	for {
		old := s.rs.Load()
		v := old
		v ^= v << 13
		v ^= v >> 7
		v ^= v << 17
		if s.rs.CompareAndSwap(old, v) {
			return v
		}
	}
}

func (s *Store) codeOff(r *sim.CodeRegion) uint64 { return s.nextRand() % r.Size() }

// Put inserts or overwrites a key.
func (s *Store) Put(key, value []byte) {
	s.write(key, value, false)
}

// Delete removes a key (tombstone write).
func (s *Store) Delete(key []byte) {
	s.write(key, nil, true)
}

func (s *Store) write(key, value []byte, tomb bool) {
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	s.mu.Lock()
	defer s.mu.Unlock()
	if tomb {
		s.st.Deletes++
	} else {
		s.st.Puts++
	}
	// RPC decode + WAL append. The generous integer budget models the
	// HBase client/server request path (protobuf decode, region lookup,
	// MVCC bookkeeping), which dominates instructions per operation.
	rec := len(k) + len(v) + 12
	s.cpu.Code(s.walCode, s.codeOff(s.walCode), 640)
	s.cpu.StoreR(s.walRegion, s.st.WALBytes%s.walRegion.Size, rec)
	s.cpu.IntOps(420)
	s.cpu.Branches(95)
	s.cpu.FPOps(4)
	s.st.WALBytes += uint64(rec)
	// Memtable insert. The upper skiplist levels stay cache-resident; only
	// the final descent touches cold nodes, so the scattered-probe charge
	// is capped.
	probes := s.mem.put(k, v, tomb)
	if probes > 8 {
		probes = 8
	}
	s.cpu.Code(s.memCode, s.codeOff(s.memCode), 640)
	s.chargeProbes(s.memRegion, probes, len(k)+8)
	s.cpu.IntOps(180)
	s.cpu.Branches(40)
	s.cpu.StoreR(s.memRegion, uint64(s.mem.bytes)%s.memRegion.Size, len(k)+len(v)+16)
	if s.mem.bytes >= s.opts.MemtableBytes {
		s.flushLocked()
	}
}

// chargeProbes models pointer-chasing probe loads scattered in a region.
func (s *Store) chargeProbes(r sim.DataRegion, probes, width int) {
	if s.cpu == nil {
		return
	}
	for i := 0; i < probes; i++ {
		s.cpu.LoadR(r, s.nextRand()%maxU64(r.Size, 1), width)
	}
	s.cpu.IntOps(6 * probes)
	s.cpu.Branches(2 * probes)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Get returns the value for key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.statMu.Lock()
	s.st.Gets++
	s.statMu.Unlock()

	// Request path: RPC decode, region/row-lock lookup, result encode.
	s.cpu.Code(s.readCode, s.codeOff(s.readCode), 768)
	s.cpu.IntOps(620)
	s.cpu.Branches(140)
	s.cpu.FPOps(5)
	v, tomb, ok, probes := s.mem.get(key)
	if probes > 4 {
		probes = 4
	}
	s.chargeProbes(s.memRegion, probes, len(key)+8)
	if ok {
		if tomb {
			return nil, false
		}
		return append([]byte(nil), v...), true
	}
	for i := len(s.runs) - 1; i >= 0; i-- {
		t := s.runs[i]
		// Bloom filter check: one or two cache lines of the bit array.
		s.cpu.LoadR(t.region, bloomProbeOff(key, t.region.Size), 16)
		s.cpu.IntOps(24)
		s.cpu.Branches(4)
		if s.opts.BloomBitsPerKey > 0 && !t.bloom.mayContain(key) {
			s.statMu.Lock()
			s.st.BloomNegative++
			s.statMu.Unlock()
			continue
		}
		s.statMu.Lock()
		s.st.RunsProbed++
		s.statMu.Unlock()
		r, ok, probes := t.find(key)
		// The run's block index stays hot in the Java heap; only the last
		// few search steps touch cold blocks of the file.
		if probes > 4 {
			probes = 4
		}
		s.chargeProbes(t.region, probes, len(key)+16)
		if ok {
			if r.tomb {
				return nil, false
			}
			return append([]byte(nil), r.val...), true
		}
	}
	return nil, false
}

// Scan returns up to limit live entries with key >= start, in key order.
func (s *Store) Scan(start []byte, limit int) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.statMu.Lock()
	s.st.Scans++
	s.statMu.Unlock()
	s.cpu.Code(s.scanCode, s.codeOff(s.scanCode), 640)
	s.cpu.IntOps(520)
	s.cpu.Branches(120)
	s.cpu.FPOps(1)

	type cursor struct {
		next func() (row, bool)
		cur  row
		ok   bool
		prio int // higher = newer
	}
	var cs []*cursor
	// Memtable cursor (newest). Skiplist nodes are heap-scattered.
	node := s.mem.seek(start)
	memNext := func() (row, bool) {
		if node == nil {
			return row{}, false
		}
		r := row{key: node.key, val: node.val, tomb: node.tomb}
		s.cpu.LoadR(s.memRegion, s.nextRand()%s.memRegion.Size, len(r.key)+len(r.val)+16)
		node = node.next[0]
		return r, true
	}
	cs = append(cs, &cursor{next: memNext, prio: len(s.runs) + 1})
	for i, t := range s.runs {
		tt := t
		pos := t.seek(start)
		// The seek itself binary-searches the run.
		s.chargeProbes(tt.region, 5, 24)
		n := func() (row, bool) {
			if pos >= len(tt.rows) {
				return row{}, false
			}
			r := tt.rows[pos]
			// Sequential read of the run at the cursor position.
			s.cpu.LoadR(tt.region, uint64(pos)*32, len(r.key)+len(r.val)+8)
			pos++
			return r, true
		}
		cs = append(cs, &cursor{next: n, prio: i + 1})
	}
	for _, c := range cs {
		c.cur, c.ok = c.next()
	}
	var out []Entry
	scanned := 0
	for len(out) < limit {
		best := -1
		for i, c := range cs {
			if !c.ok {
				continue
			}
			if best == -1 ||
				bytes.Compare(c.cur.key, cs[best].cur.key) < 0 ||
				(bytes.Equal(c.cur.key, cs[best].cur.key) && c.prio > cs[best].prio) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		r := cs[best].cur
		key := r.key
		// Advance every cursor past this key (older versions lose).
		for _, c := range cs {
			for c.ok && bytes.Equal(c.cur.key, key) {
				c.cur, c.ok = c.next()
				scanned++
			}
		}
		if r.tomb {
			continue
		}
		out = append(out, Entry{
			Key:   append([]byte(nil), key...),
			Value: append([]byte(nil), r.val...),
		})
		s.cpu.IntOps(55)
		s.cpu.Branches(12)
		s.cpu.FPOps(1)
	}
	s.statMu.Lock()
	s.st.ScannedEntries += uint64(scanned)
	s.statMu.Unlock()
	return out
}

// Flush forces the memtable into an immutable run.
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
}

func (s *Store) flushLocked() {
	if s.mem.n == 0 {
		return
	}
	rows := make([]row, 0, s.mem.n)
	for node := s.mem.head.next[0]; node != nil; node = node.next[0] {
		rows = append(rows, row{key: node.key, val: node.val, tomb: node.tomb})
	}
	t := buildSSTable(rows, s.opts.BloomBitsPerKey, s.cpu)
	// Sequential write of the run; HFile blocks are compressed on flush,
	// so the charged I/O is a third of the logical bytes.
	s.cpu.Code(s.walCode, s.codeOff(s.walCode), 512)
	s.cpu.StoreR(t.region, 0, t.bytes/3)
	s.runs = append(s.runs, t)
	s.mem = newMemtable()
	s.st.Flushes++
	if len(s.runs) > s.opts.MaxRuns {
		s.compactLocked()
	}
}

func (s *Store) compactLocked() {
	runs := make([][]row, len(s.runs))
	total := 0
	for i, t := range s.runs {
		runs[i] = t.rows
		total += t.bytes
	}
	merged := mergeRows(runs, true)
	t := buildSSTable(merged, s.opts.BloomBitsPerKey, s.cpu)
	// Compaction I/O: read every input run, write the output run
	// (block-compressed both ways).
	s.cpu.Code(s.scanCode, s.codeOff(s.scanCode), 768)
	for _, old := range s.runs {
		s.cpu.LoadR(old.region, 0, old.bytes/3)
	}
	s.cpu.StoreR(t.region, 0, t.bytes/3)
	s.cpu.IntOps(4 * len(merged))
	s.cpu.Branches(2 * len(merged))
	s.runs = []*sstable{t}
	s.st.Compactions++
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.st
}

// Runs returns the current immutable run count (for tests/ablation).
func (s *Store) Runs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.runs)
}

// Len returns the number of live keys (linear; intended for tests).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]bool{}
	live := map[string]bool{}
	consider := func(r row) {
		k := string(r.key)
		if seen[k] {
			return
		}
		seen[k] = true
		if !r.tomb {
			live[k] = true
		}
	}
	for node := s.mem.head.next[0]; node != nil; node = node.next[0] {
		consider(row{key: node.key, val: node.val, tomb: node.tomb})
	}
	for i := len(s.runs) - 1; i >= 0; i-- {
		for _, r := range s.runs[i].rows {
			consider(r)
		}
	}
	return len(live)
}
