package kvstore

import (
	"sync"
	"sync/atomic"
)

// blockCache is a sharded LRU-approximating cache over modeled SSTable
// blocks — the stand-in for the HBase block cache / LevelDB table cache
// on the run read path. Each shard holds its own lock, map, and ring,
// so concurrent readers on different shards never contend; within a
// shard, hits take only the shared read-lock and mark a CLOCK reference
// bit, so the hot hit path never serializes readers the way a strict
// move-to-front LRU would. Eviction is second-chance: a referenced
// entry survives one sweep. Entries are identified by (run id, block
// index); run ids are process-unique, so a compacted-away run's blocks
// simply age out.
type blockCache struct {
	shards []cacheShard
}

type blockKey struct {
	table uint64
	block int
}

type cacheEnt struct {
	key  blockKey
	size int
	ref  atomic.Bool // CLOCK reference bit, set lock-free on hit
}

type cacheShard struct {
	mu    sync.RWMutex
	cap   int
	bytes int
	ring  []*cacheEnt // insertion ring; hand sweeps for second chance
	hand  int
	items map[blockKey]*cacheEnt
}

const cacheShards = 16

// newBlockCache builds a cache with the given total byte capacity.
func newBlockCache(capacity int) *blockCache {
	if capacity <= 0 {
		return nil
	}
	per := capacity / cacheShards
	if per < 1 {
		per = 1
	}
	c := &blockCache{shards: make([]cacheShard, cacheShards)}
	for i := range c.shards {
		c.shards[i] = cacheShard{cap: per, items: map[blockKey]*cacheEnt{}}
	}
	return c
}

func (c *blockCache) shard(k blockKey) *cacheShard {
	h := k.table*0x9e3779b97f4a7c15 + uint64(k.block)*0xff51afd7ed558ccd
	return &c.shards[h%cacheShards]
}

// touch records an access to block k of the given modeled size. It
// returns true on a hit; on a miss the block is admitted and cold
// entries are evicted to fit.
func (c *blockCache) touch(k blockKey, size int) bool {
	s := c.shard(k)
	s.mu.RLock()
	ent := s.items[k]
	s.mu.RUnlock()
	if ent != nil {
		ent.ref.Store(true)
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ent := s.items[k]; ent != nil { // raced with another admitter
		ent.ref.Store(true)
		return true
	}
	ent = &cacheEnt{key: k, size: size}
	s.items[k] = ent
	s.ring = append(s.ring, ent)
	s.bytes += size
	for s.bytes > s.cap && len(s.ring) > 1 {
		s.hand %= len(s.ring)
		victim := s.ring[s.hand]
		if victim != ent && victim.ref.CompareAndSwap(true, false) {
			s.hand++ // second chance
			continue
		}
		if victim == ent { // never evict the block just admitted
			s.hand++
			continue
		}
		s.ring[s.hand] = s.ring[len(s.ring)-1]
		s.ring = s.ring[:len(s.ring)-1]
		delete(s.items, victim.key)
		s.bytes -= victim.size
	}
	return false
}

// Len reports resident blocks across all shards (tests/ablation).
func (c *blockCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.ring)
		s.mu.RUnlock()
	}
	return n
}
