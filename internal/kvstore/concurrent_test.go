package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sim"
)

// The cluster runtime (internal/cluster) drives one Store from many
// goroutines at once: shard workers, replica writes arriving from other
// nodes' workers, and scatter-gather scans. These tests pin the safety
// properties that traffic relies on, with a memtable small enough that
// flushes and compactions run continuously underneath.

// TestConcurrentMixedWorkloadIntegrity runs writers, overwriters,
// deleters, readers and scanners against one store and checks that every
// observed value is well-formed and every surviving key holds its final
// version afterwards.
func TestConcurrentMixedWorkloadIntegrity(t *testing.T) {
	s := Open(Options{MemtableBytes: 2048, CPU: sim.New(sim.XeonE5645())})
	const (
		writers = 4
		keysPer = 300
		rounds  = 3
	)
	ckey := func(w, i int) []byte { return []byte(fmt.Sprintf("w%d-key%05d", w, i)) }
	cval := func(w, i, round int) []byte { return []byte(fmt.Sprintf("w%d-key%05d@v%d", w, i, round)) }

	var wg sync.WaitGroup
	// Writers overwrite their own disjoint ranges round by round.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 1; round <= rounds; round++ {
				for i := 0; i < keysPer; i++ {
					s.Put(ckey(w, i), cval(w, i, round))
				}
			}
		}(w)
	}
	// A deleter churns a separate range with delete/re-put cycles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < rounds; round++ {
			for i := 0; i < keysPer; i++ {
				k := []byte(fmt.Sprintf("churn-%05d", i))
				s.Put(k, []byte("live"))
				s.Delete(k)
			}
		}
	}()
	// Readers verify that any value they observe belongs to its key.
	readErr := make(chan error, writers)
	for r := 0; r < writers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r + 1)))
			for n := 0; n < 1500; n++ {
				w, i := rng.Intn(writers), rng.Intn(keysPer)
				if v, ok := s.Get(ckey(w, i)); ok {
					if !bytes.HasPrefix(v, ckey(w, i)) {
						readErr <- fmt.Errorf("key %s returned foreign value %q", ckey(w, i), v)
						return
					}
				}
			}
		}(r)
	}
	// Scanners verify results stay strictly ordered mid-compaction.
	scanErr := make(chan error, 2)
	for sc := 0; sc < 2; sc++ {
		wg.Add(1)
		go func(sc int) {
			defer wg.Done()
			for n := 0; n < 60; n++ {
				start := []byte(fmt.Sprintf("w%d", sc))
				got := s.Scan(start, 50)
				for j := 1; j < len(got); j++ {
					if bytes.Compare(got[j-1].Key, got[j].Key) >= 0 {
						scanErr <- fmt.Errorf("scan out of order at %q >= %q", got[j-1].Key, got[j].Key)
						return
					}
				}
			}
		}(sc)
	}
	wg.Wait()
	close(readErr)
	close(scanErr)
	for err := range readErr {
		t.Fatal(err)
	}
	for err := range scanErr {
		t.Fatal(err)
	}
	// Quiesced: every written key holds its final round's value.
	for w := 0; w < writers; w++ {
		for i := 0; i < keysPer; i++ {
			v, ok := s.Get(ckey(w, i))
			if !ok || !bytes.Equal(v, cval(w, i, rounds)) {
				t.Fatalf("key %s = %q, %v; want final version", ckey(w, i), v, ok)
			}
		}
	}
	if st := s.Stats(); st.Flushes == 0 || st.Compactions == 0 {
		t.Fatalf("test did not exercise flush/compaction: %+v", st)
	}
}

// TestConcurrentSharedCPUInstrumentation drives two stores sharing one
// characterization CPU from concurrent goroutines — the cluster's shape,
// where every shard reports into the same whole-node counter stream.
func TestConcurrentSharedCPUInstrumentation(t *testing.T) {
	cpu := sim.New(sim.XeonE5645())
	a := Open(Options{MemtableBytes: 2048, CPU: cpu})
	b := Open(Options{MemtableBytes: 2048, CPU: cpu})
	var wg sync.WaitGroup
	for g, s := range []*Store{a, b} {
		wg.Add(1)
		go func(g int, s *Store) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				s.Put(key(g*10000+i), val(i))
				s.Get(key(g * 10000))
			}
		}(g, s)
	}
	wg.Wait()
	if cpu.Counts().Instructions() == 0 {
		t.Fatal("shared CPU recorded nothing")
	}
	if a.Len() != 400 || b.Len() != 400 {
		t.Fatalf("lens = %d, %d; want 400 each", a.Len(), b.Len())
	}
}
