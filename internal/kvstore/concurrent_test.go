package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sim"
)

// The cluster runtime (internal/cluster) drives one Store from many
// goroutines at once: shard workers, replica writes arriving from other
// nodes' workers, and scatter-gather scans. These tests pin the safety
// properties that traffic relies on, with a memtable small enough that
// flushes and compactions run continuously underneath.

// TestConcurrentMixedWorkloadIntegrity runs writers, overwriters,
// deleters, readers and scanners against one store and checks that every
// observed value is well-formed and every surviving key holds its final
// version afterwards.
func TestConcurrentMixedWorkloadIntegrity(t *testing.T) {
	s := Open(Options{MemtableBytes: 2048, CPU: sim.New(sim.XeonE5645())})
	const (
		writers = 4
		keysPer = 300
		rounds  = 3
	)
	ckey := func(w, i int) []byte { return []byte(fmt.Sprintf("w%d-key%05d", w, i)) }
	cval := func(w, i, round int) []byte { return []byte(fmt.Sprintf("w%d-key%05d@v%d", w, i, round)) }

	var wg sync.WaitGroup
	// Writers overwrite their own disjoint ranges round by round.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 1; round <= rounds; round++ {
				for i := 0; i < keysPer; i++ {
					s.Put(ckey(w, i), cval(w, i, round))
				}
			}
		}(w)
	}
	// A deleter churns a separate range with delete/re-put cycles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < rounds; round++ {
			for i := 0; i < keysPer; i++ {
				k := []byte(fmt.Sprintf("churn-%05d", i))
				s.Put(k, []byte("live"))
				s.Delete(k)
			}
		}
	}()
	// Readers verify that any value they observe belongs to its key.
	readErr := make(chan error, writers)
	for r := 0; r < writers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r + 1)))
			for n := 0; n < 1500; n++ {
				w, i := rng.Intn(writers), rng.Intn(keysPer)
				if v, ok := s.Get(ckey(w, i)); ok {
					if !bytes.HasPrefix(v, ckey(w, i)) {
						readErr <- fmt.Errorf("key %s returned foreign value %q", ckey(w, i), v)
						return
					}
				}
			}
		}(r)
	}
	// Scanners verify results stay strictly ordered mid-compaction.
	scanErr := make(chan error, 2)
	for sc := 0; sc < 2; sc++ {
		wg.Add(1)
		go func(sc int) {
			defer wg.Done()
			for n := 0; n < 60; n++ {
				start := []byte(fmt.Sprintf("w%d", sc))
				got := s.Scan(start, 50)
				for j := 1; j < len(got); j++ {
					if bytes.Compare(got[j-1].Key, got[j].Key) >= 0 {
						scanErr <- fmt.Errorf("scan out of order at %q >= %q", got[j-1].Key, got[j].Key)
						return
					}
				}
			}
		}(sc)
	}
	wg.Wait()
	close(readErr)
	close(scanErr)
	for err := range readErr {
		t.Fatal(err)
	}
	for err := range scanErr {
		t.Fatal(err)
	}
	// Quiesced: every written key holds its final round's value.
	for w := 0; w < writers; w++ {
		for i := 0; i < keysPer; i++ {
			v, ok := s.Get(ckey(w, i))
			if !ok || !bytes.Equal(v, cval(w, i, rounds)) {
				t.Fatalf("key %s = %q, %v; want final version", ckey(w, i), v, ok)
			}
		}
	}
	if st := s.Stats(); st.Flushes == 0 || st.Compactions == 0 {
		t.Fatalf("test did not exercise flush/compaction: %+v", st)
	}
}

// TestConcurrentReadsNeverObserveTornRunSet pins the version-swap
// guarantee: while a writer drives continuous flushes and compactions
// (under both policies), concurrent Gets of a stable key set must never
// miss, and concurrent Scans must always see the complete, ordered
// stable range — a reader that caught a half-installed run set would
// fail both.
func TestConcurrentReadsNeverObserveTornRunSet(t *testing.T) {
	for _, pol := range []CompactionPolicy{SizeTiered, Leveled} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			s := Open(Options{MemtableBytes: 2048, MaxRuns: 2, Compaction: pol})
			const stable = 200
			skey := func(i int) []byte { return []byte(fmt.Sprintf("stable-%05d", i)) }
			for i := 0; i < stable; i++ {
				s.Put(skey(i), []byte(fmt.Sprintf("sv-%05d", i)))
			}
			s.Flush()

			stop := make(chan struct{})
			var writer sync.WaitGroup
			writer.Add(1)
			go func() {
				defer writer.Done()
				// Churn keys sort before the stable range, so stable
				// scans cross run boundaries the churn keeps rewriting.
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					k := []byte(fmt.Sprintf("churn-%05d", i%300))
					s.Put(k, bytes.Repeat([]byte("w"), 40))
					if i%7 == 0 {
						s.Delete(k)
					}
				}
			}()

			var readers sync.WaitGroup
			errc := make(chan error, 8)
			for r := 0; r < 4; r++ {
				readers.Add(1)
				go func(r int) {
					defer readers.Done()
					rng := rand.New(rand.NewSource(int64(r)))
					for n := 0; n < 3000; n++ {
						i := rng.Intn(stable)
						v, ok := s.Get(skey(i))
						if !ok {
							errc <- fmt.Errorf("stable key %s vanished mid-compaction", skey(i))
							return
						}
						if want := fmt.Sprintf("sv-%05d", i); string(v) != want {
							errc <- fmt.Errorf("stable key %s = %q, want %q", skey(i), v, want)
							return
						}
					}
				}(r)
			}
			for sc := 0; sc < 2; sc++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					for n := 0; n < 150; n++ {
						got := s.Scan([]byte("stable-"), stable)
						if len(got) != stable {
							errc <- fmt.Errorf("scan saw %d/%d stable keys", len(got), stable)
							return
						}
						for i, e := range got {
							if !bytes.Equal(e.Key, skey(i)) {
								errc <- fmt.Errorf("scan[%d] = %q, want %q", i, e.Key, skey(i))
								return
							}
						}
					}
				}()
			}
			readers.Wait()
			close(stop)
			writer.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}
			if st := s.Stats(); st.Flushes == 0 || st.Compactions == 0 {
				t.Fatalf("churn did not exercise flush/compaction: %+v", st)
			}
		})
	}
}

// TestWriteBatchAtomicVisibility pins the visibility-horizon guarantee:
// a lock-free reader sees all of a WriteBatch or none of it. A writer
// rewrites the same key range batch by batch, each batch carrying one
// round tag; concurrent scans must only ever observe a single tag.
func TestWriteBatchAtomicVisibility(t *testing.T) {
	s := Open(Options{MemtableBytes: 2048})
	const span = 50
	key := func(i int) []byte { return []byte(fmt.Sprintf("batch-%03d", i)) }
	mk := func(round int) []BatchOp {
		ops := make([]BatchOp, span)
		for i := range ops {
			ops[i] = BatchOp{Key: key(i), Value: []byte(fmt.Sprintf("round-%04d", round))}
		}
		return ops
	}
	s.WriteBatch(mk(0))

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for round := 1; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			s.WriteBatch(mk(round))
		}
	}()
	var readers sync.WaitGroup
	errc := make(chan error, 4)
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for n := 0; n < 400; n++ {
				got := s.Scan([]byte("batch-"), span)
				if len(got) != span {
					errc <- fmt.Errorf("scan saw %d/%d batch keys", len(got), span)
					return
				}
				for _, e := range got[1:] {
					if !bytes.Equal(e.Value, got[0].Value) {
						errc <- fmt.Errorf("torn batch: %s=%q but %s=%q",
							got[0].Key, got[0].Value, e.Key, e.Value)
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestWALAccounting pins the WAL byte accounting: every write appends
// exactly len(key)+len(value)+12 record bytes (tombstones carry no
// value), across Put, Delete, WriteBatch, and concurrent writers.
func TestWALAccounting(t *testing.T) {
	s := Open(Options{MemtableBytes: 1 << 30}) // no flushes; isolate the WAL
	var want uint64
	for i := 0; i < 100; i++ {
		k, v := key(i), val(i)
		s.Put(k, v)
		want += uint64(len(k) + len(v) + 12)
	}
	for i := 0; i < 20; i++ {
		k := key(i)
		s.Delete(k)
		want += uint64(len(k) + 12)
	}
	batch := []BatchOp{
		{Key: []byte("b1"), Value: []byte("v1")},
		{Key: []byte("b2"), Delete: true},
	}
	s.WriteBatch(batch)
	want += uint64(2+2+12) + uint64(2+12)
	if got := s.Stats().WALBytes; got != want {
		t.Fatalf("WALBytes = %d, want %d", got, want)
	}

	// Concurrent writers: the total stays exact and a sampler only ever
	// observes monotonically non-decreasing values.
	s2 := Open(Options{MemtableBytes: 4096})
	const writers, per = 4, 300
	recBytes := uint64(len(key(0)) + len(val(0)) + 12)
	stop := make(chan struct{})
	monoErr := make(chan error, 1)
	go func() {
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := s2.Stats().WALBytes
			if cur < last {
				monoErr <- fmt.Errorf("WALBytes went backwards: %d -> %d", last, cur)
				return
			}
			last = cur
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s2.Put(key(w*per+i), val(0))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	select {
	case err := <-monoErr:
		t.Fatal(err)
	default:
	}
	if got, want := s2.Stats().WALBytes, uint64(writers*per)*recBytes; got != want {
		t.Fatalf("concurrent WALBytes = %d, want %d", got, want)
	}
}

// TestConcurrentSharedCPUInstrumentation drives two stores sharing one
// characterization CPU from concurrent goroutines — the cluster's shape,
// where every shard reports into the same whole-node counter stream.
func TestConcurrentSharedCPUInstrumentation(t *testing.T) {
	cpu := sim.New(sim.XeonE5645())
	a := Open(Options{MemtableBytes: 2048, CPU: cpu})
	b := Open(Options{MemtableBytes: 2048, CPU: cpu})
	var wg sync.WaitGroup
	for g, s := range []*Store{a, b} {
		wg.Add(1)
		go func(g int, s *Store) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				s.Put(key(g*10000+i), val(i))
				s.Get(key(g * 10000))
			}
		}(g, s)
	}
	wg.Wait()
	if cpu.Counts().Instructions() == 0 {
		t.Fatal("shared CPU recorded nothing")
	}
	if a.Len() != 400 || b.Len() != 400 {
		t.Fatalf("lens = %d, %d; want 400 each", a.Len(), b.Len())
	}
}
