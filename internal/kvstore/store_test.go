package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestPutGet(t *testing.T) {
	s := Open(Options{})
	s.Put([]byte("a"), []byte("1"))
	s.Put([]byte("b"), []byte("2"))
	if v, ok := s.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	if _, ok := s.Get([]byte("missing")); ok {
		t.Fatal("Get(missing) reported present")
	}
	s.Put([]byte("a"), []byte("updated"))
	if v, _ := s.Get([]byte("a")); string(v) != "updated" {
		t.Fatalf("overwrite failed: %q", v)
	}
}

func TestDeleteTombstone(t *testing.T) {
	s := Open(Options{MemtableBytes: 256}) // force flushes
	for i := 0; i < 50; i++ {
		s.Put(key(i), val(i))
	}
	s.Delete(key(7))
	if _, ok := s.Get(key(7)); ok {
		t.Fatal("deleted key still visible")
	}
	s.Flush() // tombstone now lives in a run
	if _, ok := s.Get(key(7)); ok {
		t.Fatal("deleted key visible after flush")
	}
	// Re-insert resurrects.
	s.Put(key(7), []byte("back"))
	if v, ok := s.Get(key(7)); !ok || string(v) != "back" {
		t.Fatalf("resurrection failed: %q %v", v, ok)
	}
}

func TestGetAcrossFlushes(t *testing.T) {
	s := Open(Options{MemtableBytes: 512})
	const n = 500
	for i := 0; i < n; i++ {
		s.Put(key(i), val(i))
	}
	if s.Runs() == 0 {
		t.Fatal("expected flushes with a 512-byte memtable")
	}
	for i := 0; i < n; i++ {
		v, ok := s.Get(key(i))
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%s) = %q, %v", key(i), v, ok)
		}
	}
}

func TestCompactionBoundsRunsAndPreservesData(t *testing.T) {
	s := Open(Options{MemtableBytes: 256, MaxRuns: 3})
	const n = 1000
	for i := 0; i < n; i++ {
		s.Put(key(i%200), val(i)) // heavy overwrites
	}
	if got := s.Runs(); got > 4 {
		t.Errorf("runs = %d, compaction should bound them near MaxRuns", got)
	}
	if s.Stats().Compactions == 0 {
		t.Fatal("expected at least one compaction")
	}
	// Newest value wins for every key.
	for k := 0; k < 200; k++ {
		want := val(k + 800) // last write of key k was iteration k+800
		v, ok := s.Get(key(k))
		if !ok || !bytes.Equal(v, want) {
			t.Fatalf("Get(%s) = %q, want %q", key(k), v, want)
		}
	}
}

func TestLeveledCompactionShapeAndData(t *testing.T) {
	s := Open(Options{MemtableBytes: 1024, MaxRuns: 2, Compaction: Leveled})
	const n = 2000
	for i := 0; i < n; i++ {
		s.Put(key(i%500), val(i)) // heavy overwrites
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatal("expected leveled compactions")
	}
	lr := s.LevelRuns()
	if len(lr) < 2 {
		t.Fatalf("leveled store never left L0: %v", lr)
	}
	if lr[0] > 2 {
		t.Errorf("L0 runs = %d, want <= MaxRuns after compaction", lr[0])
	}
	// Deep levels must stay sorted and pairwise disjoint.
	v := s.cur.Load()
	for lvl := 1; lvl < len(v.levels); lvl++ {
		for i := 1; i < len(v.levels[lvl]); i++ {
			if bytes.Compare(v.levels[lvl][i-1].largest(), v.levels[lvl][i].smallest()) >= 0 {
				t.Fatalf("level %d runs overlap or unsorted", lvl)
			}
		}
	}
	// Newest value wins for every key.
	for k := 0; k < 500; k++ {
		want := val(k + 1500)
		if v, ok := s.Get(key(k)); !ok || !bytes.Equal(v, want) {
			t.Fatalf("Get(%s) = %q, want %q", key(k), v, want)
		}
	}
	// Deletes survive leveled merges.
	s.Delete(key(3))
	s.Flush()
	if _, ok := s.Get(key(3)); ok {
		t.Fatal("deleted key visible after leveled flush")
	}
}

func TestBlockCacheHitsAndEviction(t *testing.T) {
	s := Open(Options{MemtableBytes: 1024, BlockCacheBytes: 8 << 10})
	for i := 0; i < 800; i++ {
		s.Put(key(i), val(i))
	}
	s.Flush()
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 40; i++ {
			s.Get(key(i))
		}
	}
	st := s.Stats()
	if st.BlockCacheMisses == 0 || st.BlockCacheHits == 0 {
		t.Fatalf("cache not exercised: %+v", st)
	}
	if s.cache.Len() == 0 {
		t.Fatal("no resident blocks")
	}
	// A tiny cache with a large scan working set must evict.
	small := Open(Options{MemtableBytes: 1024, BlockCacheBytes: 1024})
	for i := 0; i < 2000; i++ {
		small.Put(key(i), val(i))
	}
	small.Flush()
	small.Scan(key(0), 2000)
	if got := small.cache.Len(); got > 64 {
		t.Fatalf("tiny cache holds %d blocks, eviction broken", got)
	}
	// Disabled cache counts nothing.
	off := Open(Options{MemtableBytes: 1024, BlockCacheBytes: -1})
	off.Put(key(1), val(1))
	off.Flush()
	off.Get(key(1))
	if st := off.Stats(); st.BlockCacheHits+st.BlockCacheMisses != 0 {
		t.Fatalf("disabled cache recorded activity: %+v", st)
	}
}

func TestWriteBatchGroupCommit(t *testing.T) {
	s := Open(Options{MemtableBytes: 512})
	batch := make([]BatchOp, 0, 100)
	for i := 0; i < 100; i++ {
		batch = append(batch, BatchOp{Key: key(i), Value: val(i)})
	}
	batch = append(batch, BatchOp{Key: key(7), Delete: true})
	s.WriteBatch(batch)
	for i := 0; i < 100; i++ {
		v, ok := s.Get(key(i))
		if i == 7 {
			if ok {
				t.Fatal("batched delete not applied")
			}
			continue
		}
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%s) = %q, %v", key(i), v, ok)
		}
	}
	st := s.Stats()
	if st.Puts != 100 || st.Deletes != 1 {
		t.Fatalf("batch miscounted: %+v", st)
	}
}

func TestParseCompaction(t *testing.T) {
	for name, want := range map[string]CompactionPolicy{
		"": SizeTiered, "size-tiered": SizeTiered, "leveled": Leveled,
	} {
		got, ok := ParseCompaction(name)
		if !ok || got != want {
			t.Fatalf("ParseCompaction(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ParseCompaction("bogus"); ok {
		t.Fatal("bogus policy accepted")
	}
}

func TestScanOrderedAndBounded(t *testing.T) {
	s := Open(Options{MemtableBytes: 512})
	perm := rand.New(rand.NewSource(1)).Perm(300)
	for _, i := range perm {
		s.Put(key(i), val(i))
	}
	got := s.Scan(key(100), 50)
	if len(got) != 50 {
		t.Fatalf("scan returned %d entries", len(got))
	}
	for i, e := range got {
		if !bytes.Equal(e.Key, key(100+i)) {
			t.Fatalf("scan[%d] = %s, want %s", i, e.Key, key(100+i))
		}
		if !bytes.Equal(e.Value, val(100+i)) {
			t.Fatalf("scan[%d] value mismatch", i)
		}
	}
}

func TestScanSkipsTombstonesAndDuplicates(t *testing.T) {
	s := Open(Options{MemtableBytes: 256})
	for i := 0; i < 100; i++ {
		s.Put(key(i), val(i))
	}
	s.Flush()
	for i := 0; i < 100; i += 2 {
		s.Delete(key(i))
	}
	for i := 1; i < 100; i += 2 {
		s.Put(key(i), []byte("v2")) // newer version in memtable
	}
	got := s.Scan(key(0), 1000)
	if len(got) != 50 {
		t.Fatalf("scan returned %d entries, want 50 live odd keys", len(got))
	}
	for _, e := range got {
		if string(e.Value) != "v2" {
			t.Fatalf("scan returned stale version %q for %s", e.Value, e.Key)
		}
	}
}

func TestBloomFiltersCutNegativeProbes(t *testing.T) {
	mk := func(bloomBits int) Stats {
		s := Open(Options{MemtableBytes: 1024, BloomBitsPerKey: bloomBits})
		for i := 0; i < 500; i++ {
			s.Put(key(i), val(i))
		}
		s.Flush()
		for i := 1000; i < 1500; i++ {
			s.Get(key(i)) // all misses
		}
		return s.Stats()
	}
	with := mk(10)
	without := mk(-1)
	if with.RunsProbed >= without.RunsProbed {
		t.Errorf("bloom filters should cut run probes: with=%d without=%d",
			with.RunsProbed, without.RunsProbed)
	}
	if with.BloomNegative == 0 {
		t.Error("expected bloom negatives for missing keys")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := Open(Options{MemtableBytes: 4096})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Put(key(w*1000+i), val(i))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Get(key(i))
				if i%100 == 0 {
					s.Scan(key(0), 10)
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Len(); got != 2000 {
		t.Fatalf("Len = %d, want 2000", got)
	}
}

// Property: the store agrees with a map reference under an arbitrary
// interleaving of puts, deletes, and overwrites.
func TestStoreMatchesMapReferenceProperty(t *testing.T) {
	f := func(ops []uint16, memLimit uint8) bool {
		s := Open(Options{MemtableBytes: int(memLimit)*8 + 64})
		ref := map[string]string{}
		for _, op := range ops {
			k := fmt.Sprintf("k%02d", op%64)
			switch {
			case op%11 == 0:
				s.Delete([]byte(k))
				delete(ref, k)
			default:
				v := fmt.Sprintf("v%d", op)
				s.Put([]byte(k), []byte(v))
				ref[k] = v
			}
		}
		for k, want := range ref {
			v, ok := s.Get([]byte(k))
			if !ok || string(v) != want {
				return false
			}
		}
		// Scan must return exactly the live keys in order.
		got := s.Scan([]byte("k"), 1000)
		if len(got) != len(ref) {
			return false
		}
		keys := make([]string, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, e := range got {
			if string(e.Key) != keys[i] || string(e.Value) != ref[keys[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestInstrumentedOps(t *testing.T) {
	cpu := sim.New(sim.XeonE5645())
	s := Open(Options{MemtableBytes: 2048, CPU: cpu})
	for i := 0; i < 300; i++ {
		s.Put(key(i), val(i))
	}
	for i := 0; i < 300; i++ {
		s.Get(key(i))
	}
	s.Scan(key(0), 100)
	k := cpu.Counts()
	if k.Instructions() == 0 || k.StoreInstrs == 0 || k.LoadInstrs == 0 {
		t.Fatalf("instrumentation missing: %+v", k)
	}
	if k.FPInstrs == 0 {
		t.Error("kvstore ops should carry a small FP component (metrics math)")
	}
	if k.IntInstrs < 50*k.FPInstrs {
		t.Errorf("kvstore must stay integer-dominated: %d int vs %d FP",
			k.IntInstrs, k.FPInstrs)
	}
}

func TestMemtableSkiplistOrdering(t *testing.T) {
	m := newMemtable()
	perm := rand.New(rand.NewSource(2)).Perm(500)
	for n, i := range perm {
		m.put(key(i), val(i), false, uint64(n+1))
	}
	if m.count() != 500 {
		t.Fatalf("n = %d", m.count())
	}
	prev := []byte(nil)
	count := 0
	for node := m.head.next[0].Load(); node != nil; node = node.next[0].Load() {
		if prev != nil && bytes.Compare(prev, node.key) >= 0 {
			t.Fatal("skiplist out of order")
		}
		prev = node.key
		count++
	}
	if count != 500 {
		t.Fatalf("walked %d nodes", count)
	}
}

func TestBloomFilterFalseNegativesNever(t *testing.T) {
	f := newBloom(1000, 10)
	var keys [][]byte
	for i := 0; i < 1000; i++ {
		k := key(i)
		keys = append(keys, k)
		f.add(k)
	}
	for _, k := range keys {
		if !f.mayContain(k) {
			t.Fatalf("false negative for %s", k)
		}
	}
	// False-positive rate should be low-ish at 10 bits/key.
	fp := 0
	for i := 5000; i < 6000; i++ {
		if f.mayContain(key(i)) {
			fp++
		}
	}
	if fp > 100 {
		t.Errorf("false positive rate %d/1000 too high", fp)
	}
}

func TestMergeRowsNewestWins(t *testing.T) {
	old := []row{{key: []byte("a"), val: []byte("old")}, {key: []byte("b"), val: []byte("old")}}
	newer := []row{{key: []byte("a"), val: []byte("new")}, {key: []byte("c"), tomb: true}}
	got := mergeRows([][]row{old, newer}, true)
	if len(got) != 2 {
		t.Fatalf("merged = %d rows", len(got))
	}
	if string(got[0].val) != "new" || string(got[1].key) != "b" {
		t.Fatalf("merge wrong: %+v", got)
	}
}
