package kvstore

import "bytes"

// CompactionPolicy selects how the store folds runs together.
type CompactionPolicy int

const (
	// SizeTiered rewrites the entire run set into a single run whenever
	// the run count exceeds MaxRuns — the seed policy: cheap bookkeeping,
	// bursty full rewrites, one flat level.
	SizeTiered CompactionPolicy = iota
	// Leveled keeps L0 as raw flush output and maintains deeper levels
	// as sorted, pairwise-disjoint runs with geometrically growing byte
	// budgets (×8 per level). Point reads probe at most one run per deep
	// level and compactions rewrite only overlapping runs instead of the
	// whole store.
	Leveled
)

// String names the policy as accepted by ParseCompaction.
func (p CompactionPolicy) String() string {
	if p == Leveled {
		return "leveled"
	}
	return "size-tiered"
}

// ParseCompaction maps a policy name ("", "size-tiered", "leveled") to
// its CompactionPolicy.
func ParseCompaction(name string) (CompactionPolicy, bool) {
	switch name {
	case "", "size-tiered":
		return SizeTiered, true
	case "leveled":
		return Leveled, true
	}
	return SizeTiered, false
}

// levelGrowth is the per-level byte-budget multiplier under Leveled.
const levelGrowth = 8

// levelTarget is level lvl's byte budget: 4 memtables at L1, ×8 deeper.
func (s *Store) levelTarget(lvl int) int {
	base := 4 * s.opts.MemtableBytes
	for i := 1; i < lvl; i++ {
		base *= levelGrowth
	}
	return base
}

// maybeCompactLocked runs the configured policy to quiescence. Caller
// holds writeMu; each step installs a fresh version, so pinned readers
// keep serving from the pre-compaction run set.
func (s *Store) maybeCompactLocked() {
	if s.opts.Compaction == Leveled {
		s.compactLeveledLocked()
		return
	}
	s.compactSizeTieredLocked()
}

// compactSizeTieredLocked folds every run into one when the count
// exceeds MaxRuns.
func (s *Store) compactSizeTieredLocked() {
	v := s.cur.Load()
	if len(v.levels[0]) <= s.opts.MaxRuns {
		return
	}
	runs := make([][]row, len(v.levels[0]))
	for i, t := range v.levels[0] {
		runs[i] = t.rows
	}
	merged := mergeRows(runs, true)
	s.cpu.Code(s.scanCode, s.codeOff(s.scanCode), 768)
	s.chargeCompactionIO(v.levels[0], nil)
	var out []*sstable
	if len(merged) > 0 {
		t := buildSSTable(merged, s.opts.BloomBitsPerKey, s.cpu)
		s.cpu.StoreR(t.region, 0, t.bytes/3)
		out = []*sstable{t}
	}
	s.cpu.IntOps(4 * len(merged))
	s.cpu.Branches(2 * len(merged))
	nv := v.clone()
	nv.levels[0] = out
	s.cur.Store(nv)
	s.ct.compactions.Add(1)
}

// compactLeveledLocked drains L0 into L1 when the flush-run count
// exceeds MaxRuns, then pushes any over-budget deep level one level
// down, repeating until every level fits.
func (s *Store) compactLeveledLocked() {
	for round := 0; round < 32; round++ {
		v := s.cur.Load()
		if len(v.levels[0]) > s.opts.MaxRuns {
			s.compactLevelLocked(0)
			continue
		}
		over := 0
		for lvl := 1; lvl < len(v.levels); lvl++ {
			if v.levelBytes(lvl) > s.levelTarget(lvl) {
				over = lvl
				break
			}
		}
		if over == 0 {
			return
		}
		s.compactLevelLocked(over)
	}
}

// compactLevelLocked merges level lvl's spill set with the overlapping
// runs of level lvl+1 and installs the result. For lvl 0 the spill set
// is every L0 run (they overlap each other); deeper levels move their
// largest run.
func (s *Store) compactLevelLocked(lvl int) {
	v := s.cur.Load()
	var sources, restSrc []*sstable
	if lvl == 0 {
		sources = v.levels[0]
	} else {
		pick := 0
		for i, t := range v.levels[lvl] {
			if t.bytes > v.levels[lvl][pick].bytes {
				pick = i
			}
		}
		sources = []*sstable{v.levels[lvl][pick]}
		restSrc = append(append([]*sstable(nil), v.levels[lvl][:pick]...), v.levels[lvl][pick+1:]...)
	}
	if len(sources) == 0 {
		return
	}
	lo, hi := sources[0].smallest(), sources[0].largest()
	for _, t := range sources[1:] {
		if bytes.Compare(t.smallest(), lo) < 0 {
			lo = t.smallest()
		}
		if bytes.Compare(t.largest(), hi) > 0 {
			hi = t.largest()
		}
	}
	tgt := lvl + 1
	var overlap, rest []*sstable
	if tgt < len(v.levels) {
		overlap, rest = overlapRange(v.levels[tgt], lo, hi)
	}
	// Merge oldest→newest: the target level holds strictly older data
	// than the spilling level.
	runs := make([][]row, 0, len(overlap)+len(sources))
	for _, t := range overlap {
		runs = append(runs, t.rows)
	}
	for _, t := range sources {
		runs = append(runs, t.rows)
	}
	dropTombs := tgt >= v.lastPopulatedLevel()
	merged := mergeRows(runs, dropTombs)
	s.cpu.Code(s.scanCode, s.codeOff(s.scanCode), 768)
	outputs := s.splitIntoRuns(merged)
	s.chargeCompactionIO(append(append([]*sstable(nil), sources...), overlap...), outputs)
	s.cpu.IntOps(4 * len(merged))
	s.cpu.Branches(2 * len(merged))

	nv := v.clone()
	if lvl == 0 {
		nv.levels[0] = nil
	} else {
		nv.levels[lvl] = restSrc
	}
	for len(nv.levels) <= tgt {
		nv.levels = append(nv.levels, nil)
	}
	newLevel := append(append([]*sstable(nil), rest...), outputs...)
	sortLevel(newLevel)
	nv.levels[tgt] = newLevel
	s.cur.Store(nv)
	s.ct.compactions.Add(1)
}

// splitIntoRuns chunks merged rows into runs of about two memtables
// each, so deep levels stay navigable and future overlaps stay narrow.
func (s *Store) splitIntoRuns(rows []row) []*sstable {
	if len(rows) == 0 {
		return nil
	}
	target := 2 * s.opts.MemtableBytes
	var out []*sstable
	var cur []row
	bytes := 0
	for _, r := range rows {
		cur = append(cur, r)
		bytes += len(r.key) + len(r.val) + 8
		if bytes >= target {
			out = append(out, buildSSTable(cur, s.opts.BloomBitsPerKey, s.cpu))
			cur, bytes = nil, 0
		}
	}
	if len(cur) > 0 {
		out = append(out, buildSSTable(cur, s.opts.BloomBitsPerKey, s.cpu))
	}
	return out
}

// chargeCompactionIO models the compaction I/O: every input run is read
// and every output run written, block-compressed both ways (a third of
// the logical bytes, as on flush).
func (s *Store) chargeCompactionIO(inputs, outputs []*sstable) {
	for _, t := range inputs {
		s.cpu.LoadR(t.region, 0, t.bytes/3)
	}
	for _, t := range outputs {
		s.cpu.StoreR(t.region, 0, t.bytes/3)
	}
}
