package kvstore

import "bytes"

const maxHeight = 12

// skipNode is one memtable node. A nil value with tomb set is a tombstone.
type skipNode struct {
	key  []byte
	val  []byte
	tomb bool
	next [maxHeight]*skipNode
}

// memtable is a sorted in-memory write buffer (a skiplist, as in HBase's
// MemStore / LevelDB's memtable).
type memtable struct {
	head   *skipNode
	height int
	rnd    uint64
	n      int
	bytes  int
}

func newMemtable() *memtable {
	return &memtable{head: &skipNode{}, height: 1, rnd: 0x9e3779b97f4a7c15}
}

func (m *memtable) randHeight() int {
	h := 1
	for h < maxHeight {
		m.rnd ^= m.rnd << 13
		m.rnd ^= m.rnd >> 7
		m.rnd ^= m.rnd << 17
		if m.rnd&3 != 0 { // p = 1/4 per extra level
			break
		}
		h++
	}
	return h
}

// findPath returns the rightmost node < key at every level.
func (m *memtable) findPath(key []byte, path *[maxHeight]*skipNode) *skipNode {
	x := m.head
	for lvl := m.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && bytes.Compare(x.next[lvl].key, key) < 0 {
			x = x.next[lvl]
		}
		path[lvl] = x
	}
	return x.next[0]
}

// put inserts or overwrites; probes counts traversal steps (for
// instrumentation by the caller).
func (m *memtable) put(key, val []byte, tomb bool) (probes int) {
	var path [maxHeight]*skipNode
	x := m.head
	for lvl := m.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && bytes.Compare(x.next[lvl].key, key) < 0 {
			x = x.next[lvl]
			probes++
		}
		path[lvl] = x
	}
	if n := x.next[0]; n != nil && bytes.Equal(n.key, key) {
		m.bytes += len(val) - len(n.val)
		n.val = val
		n.tomb = tomb
		return probes
	}
	h := m.randHeight()
	if h > m.height {
		for lvl := m.height; lvl < h; lvl++ {
			path[lvl] = m.head
		}
		m.height = h
	}
	node := &skipNode{key: key, val: val, tomb: tomb}
	for lvl := 0; lvl < h; lvl++ {
		node.next[lvl] = path[lvl].next[lvl]
		path[lvl].next[lvl] = node
	}
	m.n++
	m.bytes += len(key) + len(val) + 16
	return probes
}

// get looks the key up; ok reports presence (including tombstones).
func (m *memtable) get(key []byte) (val []byte, tomb, ok bool, probes int) {
	x := m.head
	for lvl := m.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && bytes.Compare(x.next[lvl].key, key) < 0 {
			x = x.next[lvl]
			probes++
		}
	}
	n := x.next[0]
	if n != nil && bytes.Equal(n.key, key) {
		return n.val, n.tomb, true, probes
	}
	return nil, false, false, probes
}

// seek returns the first node with key >= start.
func (m *memtable) seek(start []byte) *skipNode {
	var path [maxHeight]*skipNode
	return m.findPath(start, &path)
}
