package kvstore

import (
	"bytes"
	"sync/atomic"
)

const maxHeight = 12

// valRec is one version of a key's value. Overwrites push a new record
// whose prev links the older one, so a reader pinned at sequence S
// resolves the newest record with seq <= S — the memtable half of
// snapshot reads.
type valRec struct {
	val  []byte
	tomb bool
	seq  uint64
	prev *valRec
}

// skipNode is one memtable node. The key is immutable after publication;
// the value chain head is swapped atomically on overwrite.
type skipNode struct {
	key  []byte
	rec  atomic.Pointer[valRec]
	next [maxHeight]atomic.Pointer[skipNode]
}

// resolve returns the newest record visible at seq, or nil if the node
// was created after the pin point.
func (n *skipNode) resolve(seq uint64) *valRec {
	r := n.rec.Load()
	for r != nil && r.seq > seq {
		r = r.prev
	}
	return r
}

// memtable is a sorted in-memory write buffer (a skiplist, as in HBase's
// MemStore / LevelDB's memtable). It is single-writer, many-reader
// lock-free: the store's write mutex serializes mutators, while readers
// traverse concurrently through atomic pointer loads alone — they never
// block on a flush, a compaction, or another reader.
type memtable struct {
	head   *skipNode
	height atomic.Int32
	rnd    uint64 // writer-only
	n      atomic.Int64
	size   atomic.Int64
}

func newMemtable() *memtable {
	m := &memtable{head: &skipNode{}, rnd: 0x9e3779b97f4a7c15}
	m.height.Store(1)
	return m
}

func (m *memtable) count() int { return int(m.n.Load()) }
func (m *memtable) bytes() int { return int(m.size.Load()) }

func (m *memtable) randHeight() int {
	h := 1
	for h < maxHeight {
		m.rnd ^= m.rnd << 13
		m.rnd ^= m.rnd >> 7
		m.rnd ^= m.rnd << 17
		if m.rnd&3 != 0 { // p = 1/4 per extra level
			break
		}
		h++
	}
	return h
}

// put inserts or overwrites at seq; probes counts traversal steps (for
// instrumentation by the caller). Caller must be the single writer.
func (m *memtable) put(key, val []byte, tomb bool, seq uint64) (probes int) {
	var path [maxHeight]*skipNode
	height := int(m.height.Load())
	x := m.head
	for lvl := height - 1; lvl >= 0; lvl-- {
		for {
			nx := x.next[lvl].Load()
			if nx == nil || bytes.Compare(nx.key, key) >= 0 {
				break
			}
			x = nx
			probes++
		}
		path[lvl] = x
	}
	if n := path[0].next[0].Load(); n != nil && bytes.Equal(n.key, key) {
		old := n.rec.Load()
		rec := &valRec{val: val, tomb: tomb, seq: seq, prev: old}
		n.rec.Store(rec)
		m.size.Add(int64(len(val) + 24)) // the chain keeps the old record
		return probes
	}
	h := m.randHeight()
	if h > height {
		for lvl := height; lvl < h; lvl++ {
			path[lvl] = m.head
		}
		m.height.Store(int32(h))
	}
	node := &skipNode{key: key}
	node.rec.Store(&valRec{val: val, tomb: tomb, seq: seq})
	// Link bottom-up: a node's forward pointer is set before the node is
	// published at that level, so a concurrent reader always finds a
	// fully-formed suffix.
	for lvl := 0; lvl < h; lvl++ {
		node.next[lvl].Store(path[lvl].next[lvl].Load())
		path[lvl].next[lvl].Store(node)
	}
	m.n.Add(1)
	m.size.Add(int64(len(key) + len(val) + 16))
	return probes
}

// get looks the key up at seq; ok reports presence (including
// tombstones). Safe for concurrent use with one writer.
func (m *memtable) get(key []byte, seq uint64) (val []byte, tomb, ok bool, probes int) {
	x := m.head
	for lvl := int(m.height.Load()) - 1; lvl >= 0; lvl-- {
		for {
			nx := x.next[lvl].Load()
			if nx == nil || bytes.Compare(nx.key, key) >= 0 {
				break
			}
			x = nx
			probes++
		}
	}
	n := x.next[0].Load()
	if n != nil && bytes.Equal(n.key, key) {
		if r := n.resolve(seq); r != nil {
			return r.val, r.tomb, true, probes
		}
	}
	return nil, false, false, probes
}

// seek returns the first node with key >= start.
func (m *memtable) seek(start []byte) *skipNode {
	x := m.head
	for lvl := int(m.height.Load()) - 1; lvl >= 0; lvl-- {
		for {
			nx := x.next[lvl].Load()
			if nx == nil || bytes.Compare(nx.key, start) >= 0 {
				break
			}
			x = nx
		}
	}
	return x.next[0].Load()
}

// rows freezes the newest record of every node into sorted rows — the
// flush input. Caller must hold the write mutex (no concurrent writer),
// so the newest record per node is final.
func (m *memtable) rows() []row {
	out := make([]row, 0, m.count())
	for node := m.head.next[0].Load(); node != nil; node = node.next[0].Load() {
		r := node.rec.Load()
		out = append(out, row{key: node.key, val: r.val, seq: r.seq, tomb: r.tomb})
	}
	return out
}
