package kvstore

import (
	"bytes"
	"sort"

	"repro/internal/sim"
)

// Entry is one key-value pair as returned by Get/Scan.
type Entry struct {
	Key   []byte
	Value []byte
}

// row is the internal representation including tombstones.
type row struct {
	key  []byte
	val  []byte
	tomb bool
}

// sstable is one immutable sorted run with a bloom filter — the in-memory
// analogue of an HBase HFile / LevelDB table.
type sstable struct {
	rows   []row
	bloom  bloomFilter
	bytes  int
	region sim.DataRegion
}

func buildSSTable(rows []row, bitsPerKey int, cpu *sim.CPU) *sstable {
	t := &sstable{rows: rows, bloom: newBloom(len(rows), bitsPerKey)}
	for _, r := range rows {
		t.bloom.add(r.key)
		t.bytes += len(r.key) + len(r.val) + 8
	}
	t.region = cpu.Alloc("kvstore.sstable", uint64(t.bytes)+64)
	return t
}

// find binary-searches for key, returning the row and probe count.
func (t *sstable) find(key []byte) (row, bool, int) {
	lo, hi, probes := 0, len(t.rows), 0
	for lo < hi {
		mid := (lo + hi) / 2
		probes++
		if bytes.Compare(t.rows[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(t.rows) && bytes.Equal(t.rows[lo].key, key) {
		return t.rows[lo], true, probes
	}
	return row{}, false, probes
}

// seek returns the index of the first row with key >= start.
func (t *sstable) seek(start []byte) int {
	return sort.Search(len(t.rows), func(i int) bool {
		return bytes.Compare(t.rows[i].key, start) >= 0
	})
}

// bloomFilter is a split-free double-hashing Bloom filter.
type bloomFilter struct {
	bits  []uint64
	nbits uint64
	k     int
}

func newBloom(n, bitsPerKey int) bloomFilter {
	if n == 0 {
		n = 1
	}
	if bitsPerKey <= 0 {
		bitsPerKey = 10
	}
	nbits := uint64(n*bitsPerKey + 63)
	k := bitsPerKey * 69 / 100
	if k < 1 {
		k = 1
	}
	if k > 12 {
		k = 12
	}
	return bloomFilter{bits: make([]uint64, nbits/64+1), nbits: nbits, k: k}
}

func bloomHashes(key []byte) (uint64, uint64) {
	var h1 uint64 = 14695981039346656037
	for _, b := range key {
		h1 ^= uint64(b)
		h1 *= 1099511628211
	}
	h2 := h1*0xff51afd7ed558ccd ^ h1>>33
	return h1, h2 | 1
}

func (f bloomFilter) add(key []byte) {
	h1, h2 := bloomHashes(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		f.bits[bit/64] |= 1 << (bit % 64)
	}
}

func (f bloomFilter) mayContain(key []byte) bool {
	if f.nbits == 0 {
		return false
	}
	h1, h2 := bloomHashes(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// mergeRows k-way merges runs ordered oldest→newest; for duplicate keys the
// newest wins. dropTombs removes tombstones (full compaction).
func mergeRows(runs [][]row, dropTombs bool) []row {
	idx := make([]int, len(runs))
	var out []row
	for {
		best := -1
		for i := len(runs) - 1; i >= 0; i-- { // newest first on ties
			if idx[i] >= len(runs[i]) {
				continue
			}
			if best == -1 || bytes.Compare(runs[i][idx[i]].key, runs[best][idx[best]].key) < 0 {
				best = i
			}
		}
		if best == -1 {
			return out
		}
		r := runs[best][idx[best]]
		idx[best]++
		// Skip older versions of the same key.
		for i := range runs {
			for idx[i] < len(runs[i]) && bytes.Equal(runs[i][idx[i]].key, r.key) {
				idx[i]++
			}
		}
		if r.tomb && dropTombs {
			continue
		}
		out = append(out, r)
	}
}
