package kvstore

import (
	"bytes"
	"sort"
	"sync/atomic"

	"repro/internal/sim"
)

// Entry is one key-value pair as returned by Get/Scan.
type Entry struct {
	Key   []byte
	Value []byte
}

// row is the internal representation including tombstones. seq is the
// store-wide write sequence that produced the row; merges keep the
// highest sequence per key.
type row struct {
	key  []byte
	val  []byte
	seq  uint64
	tomb bool
}

// blockRows is the modeled block granularity: the run is charged (and
// block-cached) in groups of blockRows adjacent rows, standing in for
// the HFile/LevelDB data blocks a real store reads from disk.
const blockRows = 16

// tableIDs hands out process-unique run identities for block-cache keys.
var tableIDs atomic.Uint64

// sstable is one immutable sorted run with a bloom filter — the in-memory
// analogue of an HBase HFile / LevelDB table.
type sstable struct {
	id     uint64
	rows   []row
	bloom  bloomFilter
	bytes  int
	region sim.DataRegion
}

func buildSSTable(rows []row, bitsPerKey int, cpu *sim.CPU) *sstable {
	t := &sstable{id: tableIDs.Add(1), rows: rows, bloom: newBloom(len(rows), bitsPerKey)}
	for _, r := range rows {
		t.bloom.add(r.key)
		t.bytes += len(r.key) + len(r.val) + 8
	}
	t.region = cpu.Alloc("kvstore.sstable", uint64(t.bytes)+64)
	return t
}

// smallest and largest bound the run's key range (rows is never empty).
func (t *sstable) smallest() []byte { return t.rows[0].key }
func (t *sstable) largest() []byte  { return t.rows[len(t.rows)-1].key }

// blocks is the modeled block count.
func (t *sstable) blocks() int { return (len(t.rows) + blockRows - 1) / blockRows }

// blockSpan maps block b to its modeled byte span inside the run. Row
// sizes are approximated as uniform; the charge is capped so one block
// fill stays within a few cache lines of a real block read.
func (t *sstable) blockSpan(b int) (off uint64, n int) {
	nb := t.blocks()
	if nb == 0 {
		return 0, 0
	}
	per := t.bytes / nb
	if per > 2048 {
		per = 2048
	}
	if per < 64 {
		per = 64
	}
	return uint64(b) * uint64(per), per
}

// find binary-searches for key, returning the row, the terminal index
// (the first row >= key, i.e. the seek position), whether the key was
// found, and the probe count.
func (t *sstable) find(key []byte) (row, int, bool, int) {
	lo, hi, probes := 0, len(t.rows), 0
	for lo < hi {
		mid := (lo + hi) / 2
		probes++
		if bytes.Compare(t.rows[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(t.rows) && bytes.Equal(t.rows[lo].key, key) {
		return t.rows[lo], lo, true, probes
	}
	return row{}, lo, false, probes
}

// seek returns the index of the first row with key >= start.
func (t *sstable) seek(start []byte) int {
	return sort.Search(len(t.rows), func(i int) bool {
		return bytes.Compare(t.rows[i].key, start) >= 0
	})
}

// bloomFilter is a split-free double-hashing Bloom filter.
type bloomFilter struct {
	bits  []uint64
	nbits uint64
	k     int
}

func newBloom(n, bitsPerKey int) bloomFilter {
	if n == 0 {
		n = 1
	}
	if bitsPerKey <= 0 {
		bitsPerKey = 10
	}
	nbits := uint64(n*bitsPerKey + 63)
	k := bitsPerKey * 69 / 100
	if k < 1 {
		k = 1
	}
	if k > 12 {
		k = 12
	}
	return bloomFilter{bits: make([]uint64, nbits/64+1), nbits: nbits, k: k}
}

func bloomHashes(key []byte) (uint64, uint64) {
	var h1 uint64 = 14695981039346656037
	for _, b := range key {
		h1 ^= uint64(b)
		h1 *= 1099511628211
	}
	h2 := h1*0xff51afd7ed558ccd ^ h1>>33
	return h1, h2 | 1
}

func (f bloomFilter) add(key []byte) {
	h1, h2 := bloomHashes(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		f.bits[bit/64] |= 1 << (bit % 64)
	}
}

func (f bloomFilter) mayContain(key []byte) bool {
	if f.nbits == 0 {
		return false
	}
	h1, h2 := bloomHashes(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// mergeRows k-way merges sorted runs; for duplicate keys the row with the
// highest sequence wins (ties break toward the later run, which callers
// order oldest→newest). dropTombs removes tombstones — legal only when no
// older run outside the merge could still hold the key.
func mergeRows(runs [][]row, dropTombs bool) []row {
	idx := make([]int, len(runs))
	var out []row
	for {
		best := -1
		for i := range runs {
			if idx[i] >= len(runs[i]) {
				continue
			}
			if best == -1 || bytes.Compare(runs[i][idx[i]].key, runs[best][idx[best]].key) < 0 {
				best = i
			}
		}
		if best == -1 {
			return out
		}
		winner := runs[best][idx[best]]
		// Among all runs positioned at this key, keep the newest version.
		for i := range runs {
			if i == best || idx[i] >= len(runs[i]) {
				continue
			}
			if r := runs[i][idx[i]]; bytes.Equal(r.key, winner.key) && r.seq >= winner.seq {
				winner = r
			}
		}
		for i := range runs {
			for idx[i] < len(runs[i]) && bytes.Equal(runs[i][idx[i]].key, winner.key) {
				idx[i]++
			}
		}
		if winner.tomb && dropTombs {
			continue
		}
		out = append(out, winner)
	}
}
