package kvstore

import (
	"bytes"
	"sort"
)

// version is one immutable view of the store: the active memtable plus
// the run hierarchy. Writers build a new version and install it with a
// single atomic pointer swap (the in-memory manifest); readers pin a
// version with one load and traverse it without ever taking the store
// lock — a reader can overlap an arbitrary number of flushes and
// compactions and still sees a coherent run set, because the versions it
// pinned are never mutated, only superseded.
//
// levels[0] holds flush output, oldest→newest, with overlapping key
// ranges (both policies flush here). Under leveled compaction,
// levels[i>0] are sorted by smallest key and pairwise disjoint, so a
// point lookup probes at most one run per deep level. Size-tiered
// compaction uses only levels[0].
type version struct {
	mem    *memtable
	levels [][]*sstable
}

func newVersion() *version {
	return &version{mem: newMemtable(), levels: make([][]*sstable, 1)}
}

// clone shallow-copies the version so a writer can edit one level and
// install the result without disturbing pinned readers.
func (v *version) clone() *version {
	nv := &version{mem: v.mem, levels: make([][]*sstable, len(v.levels))}
	for i, l := range v.levels {
		nv.levels[i] = append([]*sstable(nil), l...)
	}
	return nv
}

// runCount is the total run count across levels.
func (v *version) runCount() int {
	n := 0
	for _, l := range v.levels {
		n += len(l)
	}
	return n
}

// levelBytes is the logical byte size of one level.
func (v *version) levelBytes(lvl int) int {
	if lvl >= len(v.levels) {
		return 0
	}
	n := 0
	for _, t := range v.levels[lvl] {
		n += t.bytes
	}
	return n
}

// lastPopulatedLevel returns the deepest level holding any run (0 if
// only L0 or nothing does).
func (v *version) lastPopulatedLevel() int {
	for i := len(v.levels) - 1; i > 0; i-- {
		if len(v.levels[i]) > 0 {
			return i
		}
	}
	return 0
}

// findRun locates the unique run of a disjoint level that may contain
// key, or nil. The level must be sorted by smallest key.
func findRun(level []*sstable, key []byte) *sstable {
	i := sort.Search(len(level), func(i int) bool {
		return bytes.Compare(level[i].largest(), key) >= 0
	})
	if i < len(level) && bytes.Compare(level[i].smallest(), key) <= 0 {
		return level[i]
	}
	return nil
}

// overlapRange splits a disjoint level into the runs overlapping
// [lo, hi] and the untouched remainder.
func overlapRange(level []*sstable, lo, hi []byte) (overlap, rest []*sstable) {
	for _, t := range level {
		if bytes.Compare(t.largest(), lo) < 0 || bytes.Compare(t.smallest(), hi) > 0 {
			rest = append(rest, t)
		} else {
			overlap = append(overlap, t)
		}
	}
	return overlap, rest
}

// sortLevel orders a disjoint level by smallest key.
func sortLevel(level []*sstable) {
	sort.Slice(level, func(i, j int) bool {
		return bytes.Compare(level[i].smallest(), level[j].smallest()) < 0
	})
}
