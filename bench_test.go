// Package repro's top-level benchmarks regenerate the measured series
// behind every table and figure of the paper's evaluation (Section 6), one
// benchmark per artifact, plus the ablation benches DESIGN.md §7 calls
// out. Run with:
//
//	go test -bench=. -benchmem .
//
// Each figure benchmark executes the same generation path as cmd/figures
// (Quick preset) and reports headline values via b.ReportMetric so the
// paper-vs-measured comparison in EXPERIMENTS.md can be re-derived from
// benchmark output alone.
package repro

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/cluster"
	"repro/internal/comparators"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/figures"
	"repro/internal/kvstore"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workloads"
)

// benchCfg is the shared figure preset.
func benchCfg() figures.Config { return figures.Quick() }

// lastRowF extracts a float cell from a table by row label and column.
func lastRowF(t *core.Table, label string, col int) float64 {
	for _, row := range t.Rows {
		if row[0] == label {
			v, _ := strconv.ParseFloat(strings.TrimSpace(row[col]), 64)
			return v
		}
	}
	return 0
}

// ---- Tables ------------------------------------------------------------

func BenchmarkTable1Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(figures.Table1().Rows); got != 7 {
			b.Fatalf("table1 rows = %d", got)
		}
	}
}

func BenchmarkTable2DataSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(figures.Table2().Rows); got != 6 {
			b.Fatalf("table2 rows = %d", got)
		}
	}
}

func BenchmarkTable3Schema(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(figures.Table3().Rows); got != 9 {
			b.Fatalf("table3 rows = %d (3 ORDER + 6 ORDER_ITEM columns)", got)
		}
	}
}

func BenchmarkTable4Suite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(figures.Table4().Rows); got != 19 {
			b.Fatalf("table4 rows = %d", got)
		}
	}
}

func BenchmarkTable5MachineE5645(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Table5()
	}
}

func BenchmarkTable6Experiments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(figures.Table6().Rows); got != 19 {
			b.Fatalf("table6 rows = %d", got)
		}
	}
}

func BenchmarkTable7MachineE5310(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Table7()
	}
}

// ---- Figures -----------------------------------------------------------

func BenchmarkFig2L3LargeVsSmall(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := cfg.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowF(t, "Avg_BigData", 1), "avgL3MPKI/large")
		b.ReportMetric(lastRowF(t, "Avg_BigData", 2), "avgL3MPKI/small")
		b.ReportMetric(lastRowF(t, "Kmeans", 1)/lastRowF(t, "Kmeans", 2), "kmeansLargeOverSmall")
	}
}

func BenchmarkFig3MIPS(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := cfg.Fig3MIPS()
		if err != nil {
			b.Fatal(err)
		}
		// The paper's callout: Grep's MIPS gap between baseline and 32×.
		b.ReportMetric(lastRowF(t, "Grep", 5)/lastRowF(t, "Grep", 1), "grepMIPS32xOverBase")
	}
}

func BenchmarkFig3Speedup(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := cfg.Fig3Speedup()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowF(t, "Sort", 5), "sortSpeedup32x")
		b.ReportMetric(lastRowF(t, "Grep", 5), "grepSpeedup32x")
	}
}

func BenchmarkFig4InstrMix(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := cfg.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowF(t, "Grep", 6), "grepIntOverFP")
		b.ReportMetric(lastRowF(t, "Avg_BigData", 4), "avgIntegerFraction")
	}
}

func BenchmarkFig5Intensity(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		fp, err := cfg.Fig5("fp")
		if err != nil {
			b.Fatal(err)
		}
		intT, err := cfg.Fig5("int")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowF(fp, "Avg_BigData", 2), "avgFPIntensityE5645")
		b.ReportMetric(lastRowF(fp, "Avg_HPCC", 2), "hpccFPIntensityE5645")
		b.ReportMetric(lastRowF(intT, "Avg_BigData", 2), "avgIntIntensityE5645")
	}
}

func BenchmarkFig6Cache(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := cfg.Fig6Cache()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowF(t, "Avg_BigData", 1), "avgL1IMPKI")
		b.ReportMetric(lastRowF(t, "Avg_BigData", 2), "avgL2MPKI")
		b.ReportMetric(lastRowF(t, "Avg_BigData", 3), "avgL3MPKI")
		b.ReportMetric(lastRowF(t, "Avg_HPCC", 1), "hpccL1IMPKI")
	}
}

func BenchmarkFig6TLB(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := cfg.Fig6TLB()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowF(t, "Avg_BigData", 1), "avgDTLBMPKI")
		b.ReportMetric(lastRowF(t, "Avg_BigData", 2), "avgITLBMPKI")
	}
}

// ---- Ablations (DESIGN.md §7) -------------------------------------------

// BenchmarkAblationNoL3 removes the E5645's L3 and measures the DRAM
// traffic inflation for a representative workload — the quantitative form
// of the paper's "L3 caches are effective for big data" lesson.
func BenchmarkAblationNoL3(b *testing.B) {
	cfg := benchCfg()
	in := cfg.Base
	in.Scale = cfg.CharScale
	w := workloads.NewWordCount()
	for i := 0; i < b.N; i++ {
		with, err := core.Characterize(w, in, sim.XeonE5645())
		if err != nil {
			b.Fatal(err)
		}
		without, err := core.Characterize(w, in, sim.NoL3(sim.XeonE5645()))
		if err != nil {
			b.Fatal(err)
		}
		ratio := float64(without.Counts.DRAMBytes()) / float64(with.Counts.DRAMBytes())
		if ratio < 1 {
			b.Fatalf("removing the L3 cannot reduce DRAM traffic (ratio %.2f)", ratio)
		}
		b.ReportMetric(ratio, "dramTrafficNoL3/withL3")
	}
}

// BenchmarkAblationShallowStack compares the MapReduce WordCount's L1I MPKI
// against a tight native word-count kernel over the same bytes — isolating
// the "deep software stack" factor the paper blames for the L1I behaviour.
func BenchmarkAblationShallowStack(b *testing.B) {
	cfg := benchCfg()
	in := cfg.Base.Normalize()
	in.Scale = cfg.CharScale
	for i := 0; i < b.N; i++ {
		deep, err := core.Characterize(workloads.NewWordCount(), in, sim.XeonE5645())
		if err != nil {
			b.Fatal(err)
		}
		// Native kernel: same tokenization work, one small code region.
		cpu := sim.New(sim.XeonE5645())
		code := cpu.NewCodeRegion("native.wordcount", 2<<10)
		data := cpu.Alloc("native.input", uint64(in.Bytes(32)))
		cpu.Code(code, 0, 512)
		total := in.Bytes(32)
		for off := 0; off < total; off += 4096 {
			cpu.Load(data.Addr(uint64(off)), 4096)
			cpu.IntOps(4096 * 2)
			cpu.Branches(4096 / 2)
		}
		shallow := cpu.Counts()
		if shallow.L1IMPKI() >= deep.Counts.L1IMPKI() {
			b.Fatal("shallow stack must have lower L1I MPKI than the framework path")
		}
		b.ReportMetric(deep.Counts.L1IMPKI(), "deepStackL1IMPKI")
		b.ReportMetric(shallow.L1IMPKI(), "shallowStackL1IMPKI")
	}
}

// BenchmarkAblationCombiner measures the shuffle reduction from WordCount's
// map-side combiner.
func BenchmarkAblationCombiner(b *testing.B) {
	cfg := benchCfg()
	in := cfg.Base
	in.Scale = 4
	for i := 0; i < b.N; i++ {
		w := workloads.NewWordCount()
		with, err := core.Measure(w, in)
		if err != nil {
			b.Fatal(err)
		}
		w.DisableCombiner = true
		without, err := core.Measure(w, in)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(without.Extra["shuffledPairs"]/with.Extra["shuffledPairs"],
			"shuffleReductionFactor")
	}
}

// BenchmarkAblationBloom measures how many run probes the LSM store's Bloom
// filters eliminate on a miss-heavy read workload.
func BenchmarkAblationBloom(b *testing.B) {
	run := func(bloomBits int) kvstore.Stats {
		s := kvstore.Open(kvstore.Options{MemtableBytes: 4096, BloomBitsPerKey: bloomBits})
		for i := 0; i < 3000; i++ {
			s.Put([]byte("key"+strconv.Itoa(i)), []byte("value"))
		}
		s.Flush()
		for i := 10000; i < 13000; i++ {
			s.Get([]byte("key" + strconv.Itoa(i)))
		}
		return s.Stats()
	}
	for i := 0; i < b.N; i++ {
		with := run(10)
		without := run(-1)
		if with.RunsProbed >= without.RunsProbed {
			b.Fatal("bloom filters must cut negative-lookup probes")
		}
		b.ReportMetric(float64(without.RunsProbed)/float64(max64(with.RunsProbed, 1)),
			"probeReductionFactor")
	}
}

// BenchmarkAblationPrefetch enables the next-line prefetcher model and
// measures the demand-miss reduction on a streaming-heavy workload.
func BenchmarkAblationPrefetch(b *testing.B) {
	cfg := benchCfg()
	in := cfg.Base
	in.Scale = cfg.CharScale
	w := workloads.NewSort()
	for i := 0; i < b.N; i++ {
		plain, err := core.Characterize(w, in, sim.XeonE5645())
		if err != nil {
			b.Fatal(err)
		}
		pf, err := core.Characterize(w, in, sim.WithPrefetch(sim.XeonE5645()))
		if err != nil {
			b.Fatal(err)
		}
		if pf.Counts.Prefetches == 0 {
			b.Fatal("prefetcher idle")
		}
		b.ReportMetric(plain.Counts.L1DMPKI(), "l1dMPKI/noPrefetch")
		b.ReportMetric(pf.Counts.L1DMPKI(), "l1dMPKI/withPrefetch")
	}
}

// BenchmarkAblationStack is the paper's Section 6.3.2 proposal — replace
// MapReduce with MPI for the same computation and compare the front-end
// pressure.
func BenchmarkAblationStack(b *testing.B) {
	cfg := benchCfg()
	in := cfg.Base
	in.Scale = 4
	for i := 0; i < b.N; i++ {
		hadoop, err := core.Characterize(workloads.NewWordCount(), in, sim.XeonE5645())
		if err != nil {
			b.Fatal(err)
		}
		mpiRes, err := core.Characterize(workloads.NewWordCountMPI(), in, sim.XeonE5645())
		if err != nil {
			b.Fatal(err)
		}
		spark, err := core.Characterize(workloads.NewWordCountSpark(), in, sim.XeonE5645())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(hadoop.Counts.L1IMPKI(), "l1iMPKI/hadoop")
		b.ReportMetric(spark.Counts.L1IMPKI(), "l1iMPKI/spark")
		b.ReportMetric(mpiRes.Counts.L1IMPKI(), "l1iMPKI/mpi")
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// ---- Cluster runtime (internal/cluster) ----------------------------------

// BenchmarkCluster sweeps the sharded OLTP runtime across shard counts on
// the paper's Cloud OLTP read/write mix (95% Zipf reads / 5% writes) and
// reports aggregate throughput and tail latency. Each iteration preloads
// the resume corpus (untimed inside the workload) and serves one op per
// stored row through the coordinator's batched shard queues. Sharding
// pays even single-core: per-shard memtables, runs and compactions cover
// 1/N of the keyspace, so multi-shard throughput exceeds single-shard on
// the read-heavy mix.
func BenchmarkCluster(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			w := workloads.NewClusterOLTP()
			w.Shards = shards
			in := core.Input{
				Scale:     1,
				ScaleUnit: 1 << 18, // ≈52k resumés: enough to flush and compact
				Seed:      42,
			}
			for i := 0; i < b.N; i++ {
				res, err := core.Measure(w, in)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Value, "ops/s")
				b.ReportMetric(res.Extra["latP99Us"], "p99us")
				b.ReportMetric(res.Extra["compactions"], "compactions")
			}
		})
	}
}

// BenchmarkClusterReplicated is the same mix with R=2 synchronous
// replication — the write amplification a durability tier costs.
func BenchmarkClusterReplicated(b *testing.B) {
	w := workloads.NewClusterOLTP()
	w.Shards = 4
	w.Replication = 2
	in := core.Input{Scale: 1, ScaleUnit: 1 << 18, Seed: 42}
	for i := 0; i < b.N; i++ {
		res, err := core.Measure(w, in)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Value, "ops/s")
		b.ReportMetric(res.Extra["latP99Us"], "p99us")
	}
}

// ---- Storage engines (internal/engine) -----------------------------------

// BenchmarkEngines sweeps the storage-engine matrix on the 95/5 Zipf
// read/write mix: {size-tiered, leveled} compaction × {block cache on,
// off}, reporting aggregate throughput, tail latency, and the cache hit
// rate. This is the experiment behind the engine layer's two knobs —
// leveled compaction trades write amplification for bounded read fanout,
// and the block cache converts Zipf skew into run-read locality. The
// cache's payoff is in the modeled memory traffic (run `bdbench
// -machine e5645` with `-blockcache -1` to see the L1D/L2 MPKI swing);
// wall-clock ops/s here pays its bookkeeping while the saved "I/O" is
// simulated, so treat the hit rate, not ops/s, as its headline.
func BenchmarkEngines(b *testing.B) {
	for _, compaction := range []string{"size-tiered", "leveled"} {
		for _, cached := range []bool{true, false} {
			cacheBytes := 0 // engine default
			label := "cache"
			if !cached {
				cacheBytes = -1
				label = "nocache"
			}
			b.Run(fmt.Sprintf("%s/%s", compaction, label), func(b *testing.B) {
				w := workloads.NewClusterOLTP()
				w.Shards = 4
				w.ConfigureEngine(workloads.EngineChoice{
					Compaction:      compaction,
					BlockCacheBytes: cacheBytes,
				})
				in := core.Input{Scale: 1, ScaleUnit: 1 << 18, Seed: 42}
				for i := 0; i < b.N; i++ {
					res, err := core.Measure(w, in)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.Value, "ops/s")
					b.ReportMetric(res.Extra["latP99Us"], "p99us")
					b.ReportMetric(res.Extra["compactions"], "compactions")
					b.ReportMetric(res.Extra["cacheHitRate"], "cacheHitRate")
				}
			})
		}
	}
}

// BenchmarkReadPath compares the store's lock-free read path (readers
// pin an immutable version with one atomic load and never block) against
// the seed's discipline of a store-wide RWMutex (engine.Synchronized),
// at 8+ concurrent readers. The "churn" variants run a background writer
// driving continuous flushes and compactions — the paper-motivated case:
// under the RWMutex, every reader parks behind each flush/compaction's
// exclusive section, while the lock-free path sails past them.
func BenchmarkReadPath(b *testing.B) {
	const keys = 20000
	build := func() engine.Engine {
		e, err := engine.Open(engine.Options{MemtableBytes: 16 << 10})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < keys; i++ {
			k := []byte("rp-" + strconv.Itoa(i))
			e.Put(k, k)
		}
		return e
	}
	for _, churn := range []bool{false, true} {
		for _, variant := range []string{"lockfree", "rwmutex"} {
			name := variant
			if churn {
				name += "+churn"
			}
			b.Run(name, func(b *testing.B) {
				e := build()
				defer e.Close()
				if variant == "rwmutex" {
					e = engine.Synchronized(e)
				}
				stop := make(chan struct{})
				var wg sync.WaitGroup
				if churn {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; ; i++ {
							select {
							case <-stop:
								return
							default:
							}
							k := []byte("churn-" + strconv.Itoa(i%512))
							e.Put(k, bytes.Repeat([]byte("w"), 64))
						}
					}()
				}
				b.SetParallelism(8) // ≥ 8 reader goroutines per GOMAXPROCS
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := 0
					for pb.Next() {
						k := []byte("rp-" + strconv.Itoa(i%keys))
						if _, ok := e.Get(k); !ok {
							b.Fail()
						}
						i++
					}
				})
				b.StopTimer()
				close(stop)
				wg.Wait()
			})
		}
	}
}

// ---- Transport (internal/transport) --------------------------------------

// transportMix drives batches of the 95/5 Zipf mix through apply with
// `depth` closed-loop workers (depth = concurrent outstanding batches,
// i.e. the pipelining depth when apply rides one connection) and returns
// the latency distribution. Total work is b.N batches of batchSize ops.
// The driver itself is allocation-free in steady state — keys come from
// a pre-generated table and each worker recycles its op and result
// slices through ApplyInto — so -benchmem measures the serving path,
// not the load generator.
func transportMix(b *testing.B, depth, keys, batchSize int,
	apply func([]cluster.Op, []cluster.OpResult) error) core.LatencySummary {
	b.Helper()
	keyTab := transportKeys(keys)
	var next atomic.Int64
	recs := make([]core.LatencyRecorder, depth)
	var wg sync.WaitGroup
	for w := 0; w < depth; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			z := rand.NewZipf(rng, 1.1, 4, uint64(keys-1))
			ops := make([]cluster.Op, 0, batchSize)
			res := make([]cluster.OpResult, batchSize)
			recs[w].Reserve(b.N/depth + 1)
			for next.Add(1) <= int64(b.N) {
				ops = ops[:0]
				for len(ops) < batchSize {
					key := keyTab[z.Uint64()]
					if rng.Float64() < 0.95 {
						ops = append(ops, cluster.Op{Kind: cluster.OpGet, Key: key})
					} else {
						ops = append(ops, cluster.Op{Kind: cluster.OpPut, Key: key, Value: key})
					}
				}
				start := time.Now()
				if err := apply(ops, res); err != nil {
					b.Error(err)
					return
				}
				recs[w].Record(time.Since(start))
			}
		}(w)
	}
	wg.Wait()
	var lat core.LatencyRecorder
	for i := range recs {
		lat.Merge(&recs[i])
	}
	return lat.Summary()
}

// transportKeys pre-generates the benchmark key table so key formatting
// never charges the measured loop.
func transportKeys(keys int) [][]byte {
	tab := make([][]byte, keys)
	for i := range tab {
		tab[i] = []byte("tr-" + strconv.Itoa(i))
	}
	return tab
}

// BenchmarkTransport sweeps the networked serving layer: pipelining
// depth (concurrent outstanding batches per connection) × client
// connection count, against an in-process coordinator baseline with the
// same concurrency. Two shard servers on loopback TCP, each hosting one
// cluster node, joined to the coordinator through RemoteNode — the
// paper's coordinator/region-server topology in miniature. Reported
// per sub-benchmark: aggregate ops/s and p99 batch latency.
func BenchmarkTransport(b *testing.B) {
	const keys, batchSize = 4096, 16
	preload := func(apply func([]cluster.Op) ([]cluster.OpResult, error)) {
		ops := make([]cluster.Op, 0, 256)
		for i := 0; i < keys; i++ {
			key := []byte("tr-" + strconv.Itoa(i))
			ops = append(ops, cluster.Op{Kind: cluster.OpPut, Key: key, Value: key})
			if len(ops) == cap(ops) {
				apply(ops)
				ops = ops[:0]
			}
		}
		if len(ops) > 0 {
			apply(ops)
		}
	}
	report := func(b *testing.B, sum core.LatencySummary, elapsed time.Duration) {
		b.ReportMetric(float64(sum.Count)*batchSize/elapsed.Seconds(), "ops/s")
		b.ReportMetric(float64(sum.P99)/float64(time.Microsecond), "p99us")
	}
	for _, conns := range []int{1, 2} {
		for _, depth := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("net/conns=%d/depth=%d", conns, depth), func(b *testing.B) {
				// Alloc guard for the pooled hot path (DESIGN.md §12):
				// frame buffers, request scratch and scan pages all
				// recycle, so steady-state allocs/op must stay within the
				// committed budget in scripts/check_allocs.sh (enforced by
				// the CI bench step and the AllocsPerRun tests in
				// internal/transport). Compare -benchmem output across
				// changes.
				b.ReportAllocs()
				coord := cluster.NewEmpty(cluster.Config{})
				defer coord.Close()
				for s := 0; s < 2; s++ {
					backend := cluster.New(cluster.Config{
						Shards: 1, Engine: engine.Options{MemtableBytes: 256 << 10},
					})
					defer backend.Close()
					srv, err := transport.Listen("127.0.0.1:0", backend, transport.ServerOptions{})
					if err != nil {
						b.Fatal(err)
					}
					defer srv.Close()
					rn, err := transport.Connect(srv.Addr(), transport.ClientOptions{Conns: conns})
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := coord.AddRemote(rn); err != nil {
						b.Fatal(err)
					}
				}
				preload(coord.Apply)
				b.ResetTimer()
				start := time.Now()
				sum := transportMix(b, depth, keys, batchSize, coord.ApplyInto)
				report(b, sum, time.Since(start))
			})
		}
	}
	for _, depth := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("inproc/depth=%d", depth), func(b *testing.B) {
			coord := cluster.New(cluster.Config{
				Shards: 2, Engine: engine.Options{MemtableBytes: 256 << 10},
			})
			defer coord.Close()
			preload(coord.Apply)
			b.ResetTimer()
			start := time.Now()
			sum := transportMix(b, depth, keys, batchSize, coord.ApplyInto)
			report(b, sum, time.Since(start))
		})
	}
}

// BenchmarkFailover measures serving through a full crash/recovery
// cycle — the availability scenario the failure-aware cluster exists
// for. Topology: a coordinator with R=2 over two transport servers on
// loopback TCP. Mid-run one server is killed (listener and connections
// dropped; its backend survives, the durable-storage restart model),
// stays down ~200ms, then restarts on the same address. Closed-loop
// workers drive the 95/5 Zipf mix throughout, retrying batches that die
// with the member (counted as degraded). After recovery the benchmark
// blocks until the hint queues drain, then verifies the acceptance
// criteria: every key readable with the right value, Scan complete with
// a nil error, the killed member marked up, and hinted writes replayed
// onto it. Reported: aggregate ops/s, p99 batch latency across the
// cycle, degraded batches, and hints replayed.
func BenchmarkFailover(b *testing.B) {
	const keys, batchSize, depth = 4096, 16, 8
	for iter := 0; iter < b.N; iter++ {
		coord := cluster.NewEmpty(cluster.Config{
			Replication:   2,
			ProbeInterval: 10 * time.Millisecond,
			ProbeFailures: 2,
			HintLimit:     1 << 17,
		})
		clientOpts := transport.ClientOptions{
			Timeout:     2 * time.Second,
			DialTimeout: 100 * time.Millisecond,
			PingTimeout: 50 * time.Millisecond,
		}
		type shard struct {
			backend *cluster.Cluster
			srv     *transport.Server
		}
		shards := make([]*shard, 2)
		var ids []int
		for i := range shards {
			backend := cluster.New(cluster.Config{
				Shards: 1, Engine: engine.Options{MemtableBytes: 256 << 10},
			})
			srv, err := transport.Listen("127.0.0.1:0", backend, transport.ServerOptions{})
			if err != nil {
				b.Fatal(err)
			}
			shards[i] = &shard{backend: backend, srv: srv}
			rn, err := transport.Connect(srv.Addr(), clientOpts)
			if err != nil {
				b.Fatal(err)
			}
			id, _, err := coord.AddRemote(rn)
			if err != nil {
				b.Fatal(err)
			}
			ids = append(ids, id)
		}
		preload := make([]cluster.Op, 0, 256)
		for i := 0; i < keys; i++ {
			key := []byte("fo-" + strconv.Itoa(i))
			preload = append(preload, cluster.Op{Kind: cluster.OpPut, Key: key, Value: key})
			if len(preload) == cap(preload) {
				if _, err := coord.Apply(preload); err != nil {
					b.Fatal(err)
				}
				preload = preload[:0]
			}
		}
		if len(preload) > 0 {
			if _, err := coord.Apply(preload); err != nil {
				b.Fatal(err)
			}
		}

		// The chaos script: kill shard 0 at 150ms, restart at 350ms.
		victim := shards[0]
		chaosDone := make(chan struct{})
		go func() {
			defer close(chaosDone)
			time.Sleep(150 * time.Millisecond)
			victim.srv.Close()
			time.Sleep(200 * time.Millisecond)
			srv, err := transport.Listen(victim.srv.Addr(), victim.backend, transport.ServerOptions{})
			if err != nil {
				b.Error(err)
				return
			}
			victim.srv = srv
		}()

		stop := make(chan struct{})
		time.AfterFunc(700*time.Millisecond, func() { close(stop) })
		recs := make([]core.LatencyRecorder, depth)
		var degraded atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < depth; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(9000 + w)))
				z := rand.NewZipf(rng, 1.1, 4, uint64(keys-1))
				ops := make([]cluster.Op, 0, batchSize)
				for {
					select {
					case <-stop:
						return
					default:
					}
					ops = ops[:0]
					for len(ops) < batchSize {
						key := []byte("fo-" + strconv.Itoa(int(z.Uint64())))
						if rng.Float64() < 0.95 {
							ops = append(ops, cluster.Op{Kind: cluster.OpGet, Key: key})
						} else {
							ops = append(ops, cluster.Op{Kind: cluster.OpPut, Key: key, Value: key})
						}
					}
					batchStart := time.Now()
					if _, err := coord.Apply(ops); err != nil {
						// A batch that died with the member: degraded, not
						// fatal — failover reroutes the next attempt.
						degraded.Add(1)
						time.Sleep(time.Millisecond)
						continue
					}
					recs[w].Record(time.Since(batchStart))
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		<-chaosDone

		// Untimed verification: convergence, then correctness.
		deadline := time.Now().Add(5 * time.Second)
		converged := func() (bool, cluster.Stats) {
			st := coord.Stats()
			var pending uint64
			for _, ns := range st.Nodes {
				pending += ns.HintsPending
			}
			return st.Down == 0 && pending == 0, st
		}
		var st cluster.Stats
		for {
			var ok bool
			if ok, st = converged(); ok {
				break
			}
			if time.Now().After(deadline) {
				b.Fatalf("cluster never converged after recovery: %+v", st)
			}
			time.Sleep(5 * time.Millisecond)
		}
		for i := 0; i < keys; i++ {
			key := []byte("fo-" + strconv.Itoa(i))
			if v, ok := coord.Get(key); !ok || !bytes.Equal(v, key) {
				b.Fatalf("post-recovery Get(%s) = %q, %v", key, v, ok)
			}
		}
		entries, err := coord.Scan(nil, keys+100)
		if err != nil {
			b.Fatalf("post-recovery Scan: %v", err)
		}
		if len(entries) != keys {
			b.Fatalf("post-recovery Scan saw %d keys, want %d (silent truncation)", len(entries), keys)
		}
		var replayed uint64
		for _, ns := range st.Nodes {
			replayed += ns.HintsReplayed
		}
		if degraded.Load() == 0 && replayed == 0 {
			b.Log("warning: the kill window produced no degraded batches or hints; cycle too fast to observe failover")
		}

		var lat core.LatencyRecorder
		for i := range recs {
			lat.Merge(&recs[i])
		}
		sum := lat.Summary()
		b.ReportMetric(float64(sum.Count)*batchSize/elapsed.Seconds(), "ops/s")
		b.ReportMetric(float64(sum.P99)/float64(time.Microsecond), "p99us")
		b.ReportMetric(float64(degraded.Load()), "degradedBatches")
		b.ReportMetric(float64(replayed), "hintsReplayed")

		coord.Close()
		for _, sh := range shards {
			sh.srv.Close()
			sh.backend.Close()
		}
	}
}

// ---- Distributed analytics (internal/analytics) --------------------------

// analyticsBenchCluster spins n executor servers in-process behind real
// sockets and returns a coordinator over them.
func analyticsBenchCluster(b *testing.B, n int) (*analytics.Coordinator, func()) {
	b.Helper()
	var addrs []string
	var closers []func()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		backend := cluster.New(cluster.Config{Shards: 1})
		ex := analytics.NewExecutor(analytics.ExecutorConfig{
			Self:  ln.Addr().String(),
			Local: backend,
		})
		srv := transport.Serve(ln, backend, transport.ServerOptions{Tasks: ex})
		addrs = append(addrs, ln.Addr().String())
		closers = append(closers, func() { srv.Close(); ex.Close(); backend.Close() })
	}
	coord, err := analytics.NewCoordinator(addrs, analytics.CoordinatorOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return coord, func() {
		coord.Close()
		for _, fn := range closers {
			fn()
		}
	}
}

// BenchmarkAnalytics sweeps the distributed offline-analytics engine
// across node counts against the in-process engines on the same jobs
// and data (inproc = mapreduce/dataflow references). Executors cap
// concurrent tasks at the per-node default (2), so added nodes add task
// slots: multi-node throughput exceeding single-node on the map-heavy
// jobs is the scale-out the engine exists for. The win needs hardware
// parallelism — on a single-core machine every configuration serializes
// onto the same CPU and only the coordination overhead differs. Digests
// are asserted equal across every configuration — the engine's
// correctness contract rides inside the benchmark.
func BenchmarkAnalytics(b *testing.B) {
	jobs := []analytics.JobSpec{
		{Kind: analytics.WordCount, Seed: 42, Lines: 12000},
		{Kind: analytics.PageRank, Seed: 42, GraphBits: 10, Iterations: 3},
	}
	for _, job := range jobs {
		ref, err := analytics.RunLocal(job, 4)
		if err != nil {
			b.Fatal(err)
		}
		refDigest := ref.Digest()
		b.Run(fmt.Sprintf("%s/inproc", job.Kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := analytics.RunLocal(job, 4)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Job.Items())/res.Elapsed.Seconds(), "items/s")
			}
		})
		for _, nodes := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/nodes=%d", job.Kind, nodes), func(b *testing.B) {
				coord, closeAll := analyticsBenchCluster(b, nodes)
				defer closeAll()
				for i := 0; i < b.N; i++ {
					res, err := coord.Run(job)
					if err != nil {
						b.Fatal(err)
					}
					if res.Digest() != refDigest {
						b.Fatalf("digest %x diverges from the in-process reference %x",
							res.Digest(), refDigest)
					}
					b.ReportMetric(float64(res.Job.Items())/res.Elapsed.Seconds(), "items/s")
					b.ReportMetric(float64(res.TaskLatency.P95)/float64(time.Microsecond), "taskP95us")
					b.ReportMetric(float64(res.ShuffleBytes)/(1<<10), "shuffleKiB")
				}
			})
		}
	}
}

// ---- Comparator suites (Section 6.1.3 setup) -----------------------------

func BenchmarkComparatorSuites(b *testing.B) {
	cfg := sim.XeonE5645()
	for _, suite := range comparators.Suites() {
		b.Run(suite, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k := comparators.SuiteCounts(suite, cfg)
				b.ReportMetric(k.FPIntensity(), "fpIntensity")
				b.ReportMetric(k.L1IMPKI(), "l1iMPKI")
			}
		})
	}
}
