// Command probe is a quick characterization viewer: it runs the selected
// workloads across the Table 6 data-volume sweep on the Xeon E5645 model
// and prints MIPS, last-level-cache MPKI, and the speedup relative to the
// baseline input — the at-a-glance version of Figures 2 and 3.
//
// Usage: probe [workload ...]   (default: a representative subset)
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	cfg := figures.Quick()
	m := sim.XeonE5645()
	names := os.Args[1:]
	if len(names) == 0 {
		names = []string{"Grep", "WordCount", "Kmeans", "Sort", "Read"}
	}
	fmt.Printf("%-24s %6s %10s %10s %10s\n", "workload", "scale", "MIPS", "LLC MPKI", "speedup")
	for _, name := range names {
		w := workloads.ByName(name)
		if w == nil {
			fmt.Fprintf(os.Stderr, "probe: unknown workload %q\n", name)
			os.Exit(2)
		}
		base := 0.0
		for _, s := range core.Scales() {
			in := cfg.Base
			in.Scale = s
			res, err := core.Characterize(w, in, m)
			if err != nil {
				fmt.Fprintln(os.Stderr, "probe:", err)
				os.Exit(1)
			}
			if s == 1 {
				base = res.Value
			}
			fmt.Printf("%-24s %6d %10.0f %10.2f %10.2f\n", name, s,
				res.Counts.MIPS(m.Timing), res.Counts.L3MPKI(), res.Value/base)
		}
	}
}
