// Command bdtop is the cluster observability console: a terminal view
// of a running bdserve fleet, polled over the wire through the same
// federation the /clusterz endpoint serves (DESIGN.md §15). Each
// refresh pulls every live member's exact registry snapshot and event
// tail concurrently (OpMetricsFetch / OpEventsFetch), merges them, and
// renders cluster throughput, per-opcode latency quantiles, ring and
// migration state, and the merged event timeline.
//
// Membership is discovered live: bdtop joins the cluster's gossip as a
// route-only view adopter, so nodes that join or leave between
// refreshes appear and disappear without restarting the console. When
// the seeds are not elastic members (a static bdserve), bdtop falls
// back to polling the seed list as given.
//
// Examples:
//
//	bdtop -addr 127.0.0.1:7421
//	bdtop -addr 127.0.0.1:7481,127.0.0.1:7482 -interval 1s
//	bdtop -addr 127.0.0.1:7421 -once            (one snapshot, plain text)
//	bdtop -addr 127.0.0.1:7421 -once -json      (one federation document)
//
// A member that cannot be fetched is reported per refresh and the view
// is built from everyone else — a down node degrades the console, never
// hangs it.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/transport"
)

func main() {
	var (
		addrs    = flag.String("addr", "127.0.0.1:7421", "comma-separated member (or seed) addresses")
		interval = flag.Duration("interval", 2*time.Second, "refresh period")
		timeout  = flag.Duration("timeout", 2*time.Second, "per-refresh federation deadline")
		once     = flag.Bool("once", false, "print one refresh and exit (no screen clearing)")
		jsonOut  = flag.Bool("json", false, "emit each refresh as a federation JSON document")
		count    = flag.Int("count", 0, "exit after this many refreshes (0 = run until interrupted)")
		evTail   = flag.Int("events", 8, "event-timeline lines per refresh")
	)
	flag.Parse()
	seeds := splitAddrs(*addrs)
	if len(seeds) == 0 {
		fmt.Fprintln(os.Stderr, "bdtop: -addr needs at least one address")
		os.Exit(2)
	}

	members, coord := discover(seeds)
	if coord != nil {
		defer coord.Close()
	}
	fed := obs.NewFederator(obs.FederatorConfig{
		Members: members,
		Timeout: *timeout,
		Dial: func(peer string) (obs.Fetcher, error) {
			return transport.Connect(peer, transport.ClientOptions{
				Timeout:     *timeout,
				DialTimeout: 250 * time.Millisecond,
			})
		},
	})
	defer fed.Close()

	var prev *obs.Federation
	for n := 1; ; n++ {
		f := fed.Poll()
		if *jsonOut {
			_ = core.EncodeJSON(os.Stdout, f)
		} else {
			if !*once {
				fmt.Print("\x1b[2J\x1b[H") // clear + home between refreshes
			}
			render(os.Stdout, f, prev, *evTail)
		}
		if *once || (*count > 0 && n >= *count) {
			return
		}
		prev = f
		time.Sleep(*interval)
	}
}

// discover returns the member-list source: a live gossip view when the
// seeds are an elastic cluster (bdtop joins as a route-only adopter, so
// joins and leaves track between refreshes), else the static seed list.
func discover(seeds []string) (func() []string, *cluster.Cluster) {
	var coordPtr atomic.Pointer[cluster.Cluster]
	coord := cluster.New(cluster.Config{
		RouteOnly: true,
		Dial: func(peer string) (cluster.Remote, error) {
			return transport.Connect(peer, transport.ClientOptions{
				Timeout:     2 * time.Second,
				DialTimeout: 250 * time.Millisecond,
				PingTimeout: 250 * time.Millisecond,
				OnView: func(view []byte) {
					if c := coordPtr.Load(); c != nil {
						_ = c.AdoptEncodedView(view)
					}
				},
			})
		},
	})
	coordPtr.Store(coord)
	if err := coord.Join(seeds...); err != nil {
		// Not an elastic cluster (or no seed up yet): poll the list as
		// given. Static bdserves answer the fetch opcodes all the same.
		coord.Close()
		return func() []string { return seeds }, nil
	}
	return func() []string {
		if m := coord.MemberAddrs(); len(m) > 0 {
			return m
		}
		return seeds
	}, coord
}

// render draws one refresh: header, cluster totals and rates (prev
// supplies the earlier sample; rates print as "-" on the first
// refresh), the per-opcode table, ring/migration/hint gauges, and the
// merged event tail.
func render(w *os.File, f, prev *obs.Federation, evTail int) {
	fmt.Fprintf(w, "bdtop  %s  nodes=%d  epoch=%d  settled=%v  down=%d\n",
		f.When.Format("15:04:05"), len(f.Nodes), maxGauge(f, "bd_cluster_epoch"),
		minGauge(f, "bd_cluster_settled") >= 1, sumGauge(f, "bd_cluster_members_down"))
	for _, addr := range sortedKeys(f.Errors) {
		fmt.Fprintf(w, "  UNREACHABLE %s: %s\n", addr, f.Errors[addr])
	}
	dt := 0.0
	if prev != nil {
		dt = f.When.Sub(prev.When).Seconds()
	}

	fmt.Fprintf(w, "\nthroughput  %s req/s   in %s/s   out %s/s\n",
		rate(f, prev, dt, "bd_transport_requests_total", anyLabels),
		bytesRate(f, prev, dt, `{dir="in"}`), bytesRate(f, prev, dt, `{dir="out"}`))

	fmt.Fprintf(w, "\n%-14s %12s %12s %10s %10s\n", "OP", "TOTAL", "RATE/S", "P50", "P99")
	reqs := f.Merged.Family("bd_transport_requests_total")
	lats := f.Merged.Family("bd_transport_op_seconds")
	if reqs != nil {
		for _, s := range reqs.Series {
			if s.Value.Uint() == 0 {
				continue // never-used opcodes stay off the board
			}
			op := labelValue(s.Labels, "op")
			p50, p99 := "-", "-"
			if lats != nil {
				if ls := lats.Get(s.Labels); ls != nil {
					if d, ok := ls.Quantile(0.50); ok {
						p50 = shortDur(d)
					}
					if d, ok := ls.Quantile(0.99); ok {
						p99 = shortDur(d)
					}
				}
			}
			fmt.Fprintf(w, "%-14s %12d %12s %10s %10s\n", op, s.Value.Uint(),
				rate(f, prev, dt, "bd_transport_requests_total", s.Labels), p50, p99)
		}
	}

	fmt.Fprintf(w, "\nring members=%d   migration keys=%d bytes=%d   hints pending=%d replayed=%d dropped=%d\n",
		maxGauge(f, "bd_cluster_ring_members"),
		lookupUint(f, "bd_cluster_migration_keys_total"), lookupUint(f, "bd_cluster_migration_bytes_total"),
		sumGauge(f, "bd_cluster_hints_pending"),
		lookupUint(f, "bd_cluster_hints_replayed_total"), lookupUint(f, "bd_cluster_hints_dropped_total"))

	events := f.Events
	if len(events) > evTail {
		events = events[len(events)-evTail:]
	}
	if len(events) > 0 {
		fmt.Fprintf(w, "\nevents (last %d of %d)\n", len(events), len(f.Events))
		for _, e := range events {
			fmt.Fprintf(w, "  %s  %-16s node=%s", e.Time.Format("15:04:05.000"), e.Kind, e.Node)
			if e.Member != "" {
				fmt.Fprintf(w, " member=%s", e.Member)
			}
			if e.Epoch != 0 {
				fmt.Fprintf(w, " epoch=%d", e.Epoch)
			}
			if e.Detail != "" {
				fmt.Fprintf(w, "  %s", e.Detail)
			}
			fmt.Fprintln(w)
		}
	}
}

// anyLabels marks a rate over every series of the family summed.
const anyLabels = "*"

// familyTotal sums a counter family's series (all label sets) in a
// snapshot; labels narrows to one series ("*" = all).
func familyTotal(s *obs.RegistrySnapshot, name, labels string) (uint64, bool) {
	fam := s.Family(name)
	if fam == nil {
		return 0, false
	}
	var total uint64
	found := false
	for _, ser := range fam.Series {
		if labels == anyLabels || ser.Labels == labels {
			total += ser.Value.Uint()
			found = true
		}
	}
	return total, found
}

// rate renders a counter's per-second rate between the two refreshes.
func rate(f, prev *obs.Federation, dt float64, name, labels string) string {
	if prev == nil || dt <= 0 {
		return "-"
	}
	cur, okA := familyTotal(f.Merged, name, labels)
	old, okB := familyTotal(prev.Merged, name, labels)
	if !okA || !okB || cur < old {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(cur-old)/dt)
}

// bytesRate renders a byte counter's rate in human units.
func bytesRate(f, prev *obs.Federation, dt float64, labels string) string {
	if prev == nil || dt <= 0 {
		return "-"
	}
	cur, okA := familyTotal(f.Merged, "bd_transport_bytes_total", labels)
	old, okB := familyTotal(prev.Merged, "bd_transport_bytes_total", labels)
	if !okA || !okB || cur < old {
		return "-"
	}
	return humanBytes(float64(cur-old) / dt)
}

// maxGauge takes a per-node gauge's maximum — right for values every
// node reports about the shared view (epoch, ring size), where the
// merge's sum would multiply by the node count.
func maxGauge(f *obs.Federation, name string) int64 {
	var max int64
	for _, n := range f.Nodes {
		if v, ok := n.Metrics.Lookup(name, ""); ok && int64(v.Float()) > max {
			max = int64(v.Float())
		}
	}
	return max
}

// minGauge is maxGauge's dual — right for all-must-agree flags like
// settled.
func minGauge(f *obs.Federation, name string) int64 {
	min, first := int64(0), true
	for _, n := range f.Nodes {
		if v, ok := n.Metrics.Lookup(name, ""); ok {
			if g := int64(v.Float()); first || g < min {
				min, first = g, false
			}
		}
	}
	return min
}

// sumGauge sums a genuinely per-node gauge (pending hints, down count).
func sumGauge(f *obs.Federation, name string) int64 {
	var total int64
	for _, n := range f.Nodes {
		if v, ok := n.Metrics.Lookup(name, ""); ok {
			total += int64(v.Float())
		}
	}
	return total
}

func lookupUint(f *obs.Federation, name string) uint64 {
	v, _ := f.Merged.Lookup(name, "")
	return v.Uint()
}

// labelValue extracts one key's value from a rendered {k="v",…} set.
func labelValue(labels, key string) string {
	i := strings.Index(labels, key+`="`)
	if i < 0 {
		return labels
	}
	rest := labels[i+len(key)+2:]
	if j := strings.IndexByte(rest, '"'); j >= 0 {
		return rest[:j]
	}
	return rest
}

func shortDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func humanBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func splitAddrs(spec string) []string {
	var out []string
	for _, s := range strings.Split(spec, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}
