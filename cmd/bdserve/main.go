// Command bdserve hosts cluster shard nodes behind the binary wire
// protocol (internal/transport) — the region-server daemon of the
// paper's testbed. A coordinator in another process joins it with
// bdbench -net or transport.Connect + cluster.AddRemote. Unless -exec
// is disabled, the daemon also hosts an analytics task executor
// (internal/analytics), so distributed offline-analytics jobs can run
// where the shard data lives (bdbench -analytics).
//
// Examples:
//
//	bdserve -addr 127.0.0.1:7421
//	bdserve -addr :7421 -shards 2 -compaction leveled -blockcache 1048576
//	bdserve -addr :7421 -inflight 512 -queue 256
//	bdserve -addr :7421 -livez 127.0.0.1:7431 -pprof -slowreq 50ms
//	bdserve -addr :7421 -taskslots 4 -advertise 10.0.0.3:7421
//	bdserve -addr :7422 -join 127.0.0.1:7421        (elastic: live-join a running cluster)
//	bdserve -addr :7421 -elastic -replication 2     (elastic: first node, seeds the view)
//
// Elastic mode (-elastic, or implied by -join) hosts exactly one shard
// whose ring identity derives from the advertised address. Membership is
// an epoch-versioned view disseminated by gossip on the health-probe
// sweep: nodes join live (-join seeds), leave gracefully on
// SIGINT/SIGTERM (keyranges migrate out first, throttled to
// -migraterate), and crashed peers are declared dead and healed around.
//
// Liveness is exposed twice: on the wire (the OpPing frame, answered
// even under full admission — coordinators probe it to drive failover),
// and optionally over HTTP with -livez for orchestrators that speak
// health checks, not the binary protocol. The -livez mux is the node's
// whole observability surface (DESIGN.md §11):
//
//	GET /livez    200 "ok" while the process lives
//	GET /statz    full JSON stats snapshot (served/shed + per-node
//	              cluster counters, hint and engine stats included)
//	GET /metrics  Prometheus text: bd_transport_*, bd_cluster_*,
//	              bd_engine_*, bd_analytics_* families
//	GET /tracez   recent traced-request spans as JSON (?trace=<id>
//	              filters to one trace; &format=chrome renders the
//	              selection as Chrome trace-event JSON for Perfetto /
//	              chrome://tracing)
//	GET /slowz    recent requests at or over -slowreq
//	GET /sloz     SLO compliance + multi-window burn rates, with -slo
//	GET /clusterz federated cluster metrics (DESIGN.md §15): every live
//	              member's registry pulled over the wire and merged
//	              exactly — Prometheus text by default, ?format=json
//	              for per-node snapshots + errors
//	GET /eventz   merged cross-node event timeline (view commits,
//	              member transitions, failovers, hints, migration)
//	GET /historyz retained snapshot ring; ?rate=<series>&lookback=30s
//	              answers a counter's per-second rate from local history
//	/debug/pprof  Go profiling handlers, only with -pprof
//
// The server and its cluster coordinator record into one shared span
// ring, so /tracez — and the OpTraceFetch opcode collectors use — serve
// every hop this process touched: the server dispatch span and the
// cluster-layer write/replication spans under it.
//
// SIGINT/SIGTERM drain gracefully: stop accepting, finish every admitted
// request, flush responses, then exit 0 with a served-request summary.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/analytics"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/transport"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7421", "listen address")
		shards    = flag.Int("shards", 1, "cluster nodes hosted by this server")
		repl      = flag.Int("replication", 1, "copies per key across the hosted nodes")
		engName   = flag.String("engine", "", "storage engine backend (default lsm; see internal/engine)")
		compact   = flag.String("compaction", "", "LSM compaction policy: size-tiered or leveled")
		bcache    = flag.Int("blockcache", 0, "block-cache bytes per engine (0 = default, negative disables)")
		memtable  = flag.Int("memtable", 1<<20, "memtable flush threshold in bytes")
		queue     = flag.Int("queue", 0, "per-node request queue depth (0 = cluster default)")
		workers   = flag.Int("workers", 0, "workers per node (0 = cluster default)")
		inflight  = flag.Int("inflight", 0, "max concurrently executing requests before shedding (0 = transport default)")
		livez     = flag.String("livez", "", "optional HTTP observability address (GET /livez, /statz, /metrics, /tracez, /slowz)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof on the -livez mux")
		slowReq   = flag.Duration("slowreq", 0, "record requests at or over this service time to /slowz (0 disables)")
		traceBuf  = flag.Int("tracebuf", 0, "span-ring capacity for /tracez and /slowz (0 = transport default)")
		sloSpec   = flag.String("slo", "", "request-latency SLO as <threshold>:<target>, e.g. 5ms:0.999 (serves /sloz on the -livez mux)")
		execOn    = flag.Bool("exec", true, "host an analytics task executor on this server")
		taskSlots = flag.Int("taskslots", 0, "concurrent analytics tasks (0 = executor default)")
		advertise = flag.String("advertise", "", "address peers fetch shuffle data from (default: the resolved listen address)")
		quiet     = flag.Bool("quiet", false, "suppress the startup and shutdown banners")

		elasticOn = flag.Bool("elastic", false, "host one elastic membership node (epoch-versioned view, live join/leave); implied by -join")
		joinSeeds = flag.String("join", "", "comma-separated seed addresses to join an elastic cluster through")
		migRate   = flag.Int("migraterate", 0, "online-migration throttle in bytes/s (0 = cluster default, negative disables)")
		probeIvl  = flag.Duration("probe", 0, "health-probe and gossip sweep period (0 = cluster default)")
		leaveOn   = flag.Bool("leave", true, "leave the cluster gracefully on SIGINT/SIGTERM, migrating data out first (elastic mode)")
		leaveWait = flag.Duration("leavetimeout", 30*time.Second, "bound on the graceful-leave drain")
	)
	flag.Parse()
	elastic := *elasticOn || *joinSeeds != ""
	if elastic && *shards != 1 {
		fmt.Fprintln(os.Stderr, "bdserve: -elastic hosts exactly one shard per process; drop -shards")
		os.Exit(2)
	}
	if *pprofOn && *livez == "" {
		fmt.Fprintln(os.Stderr, "bdserve: -pprof needs -livez (the profiling handlers live on that mux)")
		os.Exit(2)
	}
	if *sloSpec != "" && *livez == "" {
		fmt.Fprintln(os.Stderr, "bdserve: -slo needs -livez (/sloz lives on that mux)")
		os.Exit(2)
	}
	sloThreshold, sloTarget, err := parseSLOSpec(*sloSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdserve:", err)
		os.Exit(2)
	}

	engOpts := engine.Options{
		Backend:         *engName,
		Compaction:      *compact,
		BlockCacheBytes: *bcache,
		MemtableBytes:   *memtable,
	}
	if err := engine.Validate(engOpts); err != nil {
		fmt.Fprintln(os.Stderr, "bdserve:", err)
		os.Exit(2)
	}
	// One span ring for the whole process: the transport server and the
	// cluster coordinator both record into it, so a collector fetching
	// this node's spans (OpTraceFetch, /tracez) sees every layer's hops.
	ringCap := *traceBuf
	if ringCap <= 0 {
		ringCap = 256
	}
	spans := obs.NewSpanLog(ringCap)
	// Bind both listeners before serving anything: a bad -livez address
	// must fail the process at startup, not log from a goroutine after
	// the daemon already reported itself healthy on the wire. The data
	// listener binds before the cluster exists because an elastic node's
	// ring identity is its resolved advertised address.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdserve:", err)
		os.Exit(1)
	}
	// Spans fetched from this process name their hop after the resolved
	// listen address (only known once the listener is bound).
	spans.SetNode(ln.Addr().String())
	// selfAddr is how peers (and the federation) name this node: the
	// advertised address when set, else the resolved listen address.
	selfAddr := *advertise
	if selfAddr == "" {
		selfAddr = ln.Addr().String()
	}
	// One event ring for the whole process: the cluster coordinator
	// records lifecycle transitions into it, OpEventsFetch and /eventz
	// serve it, and the federation merges it with the peers' rings.
	events := obs.NewEventLog(256)
	events.SetNode(selfAddr)
	// clPtr hands the cluster to the Dial callback, which outlives this
	// scope and may fire (view bounces) before cl is assigned.
	var clPtr atomic.Pointer[cluster.Cluster]
	clCfg := cluster.Config{
		Shards:         *shards,
		Replication:    *repl,
		QueueDepth:     *queue,
		WorkersPerNode: *workers,
		ProbeInterval:  *probeIvl,
		Engine:         engOpts,
		Spans:          spans,
		Events:         events,
	}
	if elastic {
		clCfg.SelfAddr = selfAddr
		clCfg.MigrateRate = *migRate
		clCfg.Dial = func(peer string) (cluster.Remote, error) {
			return transport.Connect(peer, transport.ClientOptions{
				// A dead peer must fail a probe in well under a sweep,
				// not after the default multi-second dial-retry window:
				// the declare-dead clock counts sweeps, so slow failures
				// would stretch detection by their own timeout.
				Timeout:     2 * time.Second,
				DialTimeout: 250 * time.Millisecond,
				PingTimeout: 250 * time.Millisecond,
				// Adopt the view a peer bounces a stale-epoch forward
				// with, so convergence does not wait on a probe round.
				OnView: func(view []byte) {
					if cl := clPtr.Load(); cl != nil {
						_ = cl.AdoptEncodedView(view)
					}
				},
			})
		}
	}
	cl := cluster.New(clCfg)
	clPtr.Store(cl)
	var livezLn net.Listener
	if *livez != "" {
		livezLn, err = net.Listen("tcp", *livez)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdserve: livez:", err)
			os.Exit(1)
		}
	}
	var ex *analytics.Executor
	srvOpts := transport.ServerOptions{
		MaxInFlight: *inflight,
		SlowRequest: *slowReq,
		TraceBuffer: *traceBuf,
		Spans:       spans,
	}
	if *execOn {
		ex = analytics.NewExecutor(analytics.ExecutorConfig{
			Self:          selfAddr,
			Local:         cl,
			MaxConcurrent: *taskSlots,
		})
		srvOpts.Tasks = ex
	}
	reg := obs.NewRegistry()
	cl.RegisterMetrics(reg)
	transport.RegisterPoolMetrics(reg)
	obs.RegisterRuntimeMetrics(reg)
	if ex != nil {
		ex.RegisterMetrics(reg)
	}
	// The full registry (transport series join it in onReady below) is
	// what OpMetricsFetch snapshots, so a federating peer sees exactly
	// this node's /metrics page.
	srvOpts.Metrics = reg
	srvOpts.Events = events
	// Per-node time-series retention: ten minutes of 5s captures, so
	// /historyz answers rates without an external TSDB.
	hist := obs.NewHistory(120)
	go watchCompactions(cl, events)
	var onSignal func()
	if elastic && *leaveOn {
		onSignal = func() {
			// Leave before the server drains: peers pull our keyranges and
			// read our fallbacks through this still-live server.
			if !*quiet {
				fmt.Printf("bdserve: leaving cluster (epoch %d)\n", cl.ViewEpoch())
			}
			if err := cl.Leave(*leaveWait); err != nil {
				fmt.Fprintln(os.Stderr, "bdserve: leave:", err)
			}
		}
	}
	srv, err := transport.ServeListenerUntilSignalHook(ln, cl, srvOpts,
		func(s *transport.Server) {
			s.RegisterMetrics(reg)
			// Sample only once every series is registered, so the oldest
			// retained capture can rate any of them.
			hist.Start(reg, selfAddr, 5*time.Second)
			var slo *obs.SLO
			if sloThreshold > 0 {
				slo = obs.NewSLO()
				slo.AddObjective(obs.Objective{
					Name:      "requests",
					Hist:      s.RequestLatency(),
					Threshold: sloThreshold,
					Target:    sloTarget,
				})
				slo.Start(10 * time.Second)
			}
			if livezLn != nil {
				fed := obs.NewFederator(obs.FederatorConfig{
					Self:     obs.RegistryFetcher{Node: selfAddr, Registry: reg, Events: events},
					SelfAddr: selfAddr,
					Members:  cl.MemberAddrs,
					Dial: func(peer string) (obs.Fetcher, error) {
						return transport.Connect(peer, transport.ClientOptions{
							Timeout:     2 * time.Second,
							DialTimeout: 250 * time.Millisecond,
						})
					},
				})
				go serveLivez(livezLn, s, cl, reg, slo, fed, hist, *pprofOn)
			}
			if seeds := splitSeeds(*joinSeeds); len(seeds) > 0 {
				// Join after the server is up so the seeds can dial back.
				go joinCluster(cl, seeds, *quiet)
			}
			if !*quiet {
				if elastic {
					fmt.Printf("bdserve: listening on %s (elastic member, R=%d, epoch %d, executor %v)\n",
						s.Addr(), *repl, cl.ViewEpoch(), *execOn)
				} else {
					fmt.Printf("bdserve: listening on %s (%d shards, R=%d, executor %v)\n",
						s.Addr(), *shards, *repl, *execOn)
				}
			}
		}, onSignal)
	if err != nil && srv == nil {
		fmt.Fprintln(os.Stderr, "bdserve:", err)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdserve: close:", err)
	}
	st := cl.Stats()
	if ex != nil {
		ex.Close()
	}
	cl.Close()
	if !*quiet {
		fmt.Printf("bdserve: drained; served %d requests (%d shed), %d ops across %d nodes\n",
			srv.Served(), srv.Shed(), st.Ops, len(st.Nodes))
	}
}

// splitSeeds parses the -join flag's comma-separated address list.
func splitSeeds(spec string) []string {
	var seeds []string
	for _, s := range strings.Split(spec, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seeds = append(seeds, s)
		}
	}
	return seeds
}

// joinCluster runs the join exchange against the seed list, retrying
// with backoff so a fleet can start in any order. A node that never
// reaches a seed keeps serving as its own one-member cluster — the
// seeds will also find it if any of them learns its address.
func joinCluster(cl *cluster.Cluster, seeds []string, quiet bool) {
	backoff := 100 * time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		err := cl.Join(seeds...)
		if err == nil {
			if !quiet {
				fmt.Printf("bdserve: joined via %s (epoch %d)\n", strings.Join(seeds, ","), cl.ViewEpoch())
			}
			return
		}
		time.Sleep(backoff)
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
	fmt.Fprintf(os.Stderr, "bdserve: join: no seed reachable after retries (%s)\n", strings.Join(seeds, ","))
}

// statzSnapshot is the /statz response shape: the server's wire-level
// totals plus the cluster's full per-node snapshot — every NodeStats
// field, hinted-handoff and engine counters included — in one document.
type statzSnapshot struct {
	Served  uint64        `json:"served"`
	Shed    uint64        `json:"shed"`
	Cluster cluster.Stats `json:"cluster"`
}

// serveLivez hosts the HTTP observability surface next to the wire
// protocol on an already-bound listener. It runs for the life of the
// process; the daemon's graceful drain does not wait on it (liveness
// during drain is a feature — the process is alive until it exits).
func serveLivez(ln net.Listener, srv *transport.Server, cl *cluster.Cluster,
	reg *obs.Registry, slo *obs.SLO, fed *obs.Federator, hist *obs.History, pprofOn bool) {
	mux := http.NewServeMux()
	mux.HandleFunc("/livez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = core.EncodeJSON(w, statzSnapshot{
			Served:  srv.Served(),
			Shed:    srv.Shed(),
			Cluster: cl.Stats(),
		})
	})
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/clusterz", func(w http.ResponseWriter, r *http.Request) {
		// Every hit is one fresh federation poll: ask the view who is
		// alive, fetch everyone in parallel, merge. Down members appear
		// in errors; the merge covers the rest.
		f := fed.Poll()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = core.EncodeJSON(w, f)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprintf(w, "# Federated from %d nodes at %s\n", len(f.Nodes), f.When.Format(time.RFC3339))
		for addr, msg := range f.Errors {
			fmt.Fprintf(w, "# UNREACHABLE %s: %s\n", addr, msg)
		}
		_ = f.Merged.WritePrometheus(w)
	})
	mux.HandleFunc("/eventz", func(w http.ResponseWriter, r *http.Request) {
		f := fed.Poll()
		type eventz struct {
			When   time.Time         `json:"when"`
			Events []obs.Event       `json:"events"`
			Errors map[string]string `json:"errors,omitempty"`
		}
		w.Header().Set("Content-Type", "application/json")
		_ = core.EncodeJSON(w, eventz{When: f.When, Events: f.Events, Errors: f.Errors})
	})
	mux.HandleFunc("/historyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		q := r.URL.Query()
		if name := q.Get("rate"); name != "" {
			lookback, _ := time.ParseDuration(q.Get("lookback"))
			rate, ok := hist.Rate(name, q.Get("labels"), lookback)
			_ = core.EncodeJSON(w, map[string]any{"name": name, "rate": rate, "ok": ok})
			return
		}
		pts := hist.Points()
		type point struct {
			When time.Time `json:"when"`
		}
		out := make([]point, len(pts))
		for i, p := range pts {
			out[i] = point{When: p.When}
		}
		_ = core.EncodeJSON(w, map[string]any{"points": len(pts), "times": out})
	})
	mux.Handle("/tracez", spanHandler(srv.Spans()))
	mux.Handle("/slowz", spanHandler(srv.SlowLog()))
	if slo != nil {
		mux.Handle("/sloz", slo.Handler())
	}
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if err := http.Serve(ln, mux); err != nil {
		fmt.Fprintln(os.Stderr, "bdserve: livez:", err)
	}
}

// watchCompactions folds the local engine's compaction counter into the
// event timeline: one event per poll that saw passes run, with the
// delta in the detail. Polling (rather than hooking the engine) keeps
// the engine layer free of observability plumbing; 2s granularity is
// plenty for a timeline. The goroutine lives as long as the process.
func watchCompactions(cl *cluster.Cluster, events *obs.EventLog) {
	t := time.NewTicker(2 * time.Second)
	defer t.Stop()
	last := cl.LocalEngineStats().Compactions
	for range t.C {
		now := cl.LocalEngineStats().Compactions
		if now > last {
			events.Record(obs.Event{
				Kind:   obs.EventCompaction,
				Detail: fmt.Sprintf("%d compaction passes", now-last),
			})
		}
		last = now
	}
}

// spanHandler serves a span ring as JSON, oldest first. ?trace=<id>
// (decimal, as Span.Trace marshals) filters to one trace, and
// ?format=chrome renders the selection as Chrome trace-event JSON —
// load it in Perfetto or chrome://tracing for a per-node timeline with
// phase sub-slices.
func spanHandler(log *obs.SpanLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		spans := log.Spans()
		if q := r.URL.Query().Get("trace"); q != "" {
			id, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			spans = log.ByTrace(id)
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
			_ = obs.WriteChromeTrace(w, spans)
			return
		}
		type spanz struct {
			Total uint64     `json:"total"`
			Spans []obs.Span `json:"spans"`
		}
		w.Header().Set("Content-Type", "application/json")
		_ = core.EncodeJSON(w, spanz{Total: log.Total(), Spans: spans})
	})
}

// parseSLOSpec parses the -slo flag's <threshold>:<target> form, e.g.
// "5ms:0.999". An empty spec disables the SLO (zero threshold).
func parseSLOSpec(spec string) (time.Duration, float64, error) {
	if spec == "" {
		return 0, 0, nil
	}
	thr, tgt, ok := strings.Cut(spec, ":")
	if !ok {
		return 0, 0, fmt.Errorf("-slo %q: want <threshold>:<target>, e.g. 5ms:0.999", spec)
	}
	threshold, err := time.ParseDuration(thr)
	if err != nil || threshold <= 0 {
		return 0, 0, fmt.Errorf("-slo %q: bad threshold %q", spec, thr)
	}
	target, err := strconv.ParseFloat(tgt, 64)
	if err != nil || target <= 0 || target >= 1 {
		return 0, 0, fmt.Errorf("-slo %q: target must be in (0,1), got %q", spec, tgt)
	}
	return threshold, target, nil
}
