// Command bdserve hosts cluster shard nodes behind the binary wire
// protocol (internal/transport) — the region-server daemon of the
// paper's testbed. A coordinator in another process joins it with
// bdbench -net or transport.Connect + cluster.AddRemote. Unless -exec
// is disabled, the daemon also hosts an analytics task executor
// (internal/analytics), so distributed offline-analytics jobs can run
// where the shard data lives (bdbench -analytics).
//
// Examples:
//
//	bdserve -addr 127.0.0.1:7421
//	bdserve -addr :7421 -shards 2 -compaction leveled -blockcache 1048576
//	bdserve -addr :7421 -inflight 512 -queue 256
//	bdserve -addr :7421 -livez 127.0.0.1:7431
//	bdserve -addr :7421 -taskslots 4 -advertise 10.0.0.3:7421
//
// Liveness is exposed twice: on the wire (the OpPing frame, answered
// even under full admission — coordinators probe it to drive failover),
// and optionally over HTTP with -livez for orchestrators that speak
// health checks, not the binary protocol (GET /livez -> 200 "ok",
// GET /statz -> JSON served/shed counters).
//
// SIGINT/SIGTERM drain gracefully: stop accepting, finish every admitted
// request, flush responses, then exit 0 with a served-request summary.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"repro/internal/analytics"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/transport"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7421", "listen address")
		shards    = flag.Int("shards", 1, "cluster nodes hosted by this server")
		repl      = flag.Int("replication", 1, "copies per key across the hosted nodes")
		engName   = flag.String("engine", "", "storage engine backend (default lsm; see internal/engine)")
		compact   = flag.String("compaction", "", "LSM compaction policy: size-tiered or leveled")
		bcache    = flag.Int("blockcache", 0, "block-cache bytes per engine (0 = default, negative disables)")
		memtable  = flag.Int("memtable", 1<<20, "memtable flush threshold in bytes")
		queue     = flag.Int("queue", 0, "per-node request queue depth (0 = cluster default)")
		workers   = flag.Int("workers", 0, "workers per node (0 = cluster default)")
		inflight  = flag.Int("inflight", 0, "max concurrently executing requests before shedding (0 = transport default)")
		livez     = flag.String("livez", "", "optional HTTP liveness address (GET /livez, /statz)")
		execOn    = flag.Bool("exec", true, "host an analytics task executor on this server")
		taskSlots = flag.Int("taskslots", 0, "concurrent analytics tasks (0 = executor default)")
		advertise = flag.String("advertise", "", "address peers fetch shuffle data from (default: the resolved listen address)")
		quiet     = flag.Bool("quiet", false, "suppress the startup and shutdown banners")
	)
	flag.Parse()

	engOpts := engine.Options{
		Backend:         *engName,
		Compaction:      *compact,
		BlockCacheBytes: *bcache,
		MemtableBytes:   *memtable,
	}
	if err := engine.Validate(engOpts); err != nil {
		fmt.Fprintln(os.Stderr, "bdserve:", err)
		os.Exit(2)
	}
	cl := cluster.New(cluster.Config{
		Shards:         *shards,
		Replication:    *repl,
		QueueDepth:     *queue,
		WorkersPerNode: *workers,
		Engine:         engOpts,
	})
	// Bind before building the executor: its advertised shuffle address
	// is the resolved listen address (":0" included) unless overridden.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdserve:", err)
		os.Exit(1)
	}
	var ex *analytics.Executor
	srvOpts := transport.ServerOptions{MaxInFlight: *inflight}
	if *execOn {
		self := *advertise
		if self == "" {
			self = ln.Addr().String()
		}
		ex = analytics.NewExecutor(analytics.ExecutorConfig{
			Self:          self,
			Local:         cl,
			MaxConcurrent: *taskSlots,
		})
		srvOpts.Tasks = ex
	}
	srv, err := transport.ServeListenerUntilSignal(ln, cl, srvOpts,
		func(s *transport.Server) {
			if *livez != "" {
				go serveLivez(*livez, s, cl)
			}
			if !*quiet {
				fmt.Printf("bdserve: listening on %s (%d shards, R=%d, executor %v)\n",
					s.Addr(), *shards, *repl, *execOn)
			}
		})
	if err != nil && srv == nil {
		fmt.Fprintln(os.Stderr, "bdserve:", err)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdserve: close:", err)
	}
	st := cl.Stats()
	if ex != nil {
		ex.Close()
	}
	cl.Close()
	if !*quiet {
		fmt.Printf("bdserve: drained; served %d requests (%d shed), %d ops across %d nodes\n",
			srv.Served(), srv.Shed(), st.Ops, len(st.Nodes))
	}
}

// serveLivez hosts the HTTP liveness surface next to the wire protocol.
// It runs for the life of the process; the daemon's graceful drain does
// not wait on it (liveness during drain is a feature — the process is
// alive until it exits).
func serveLivez(addr string, srv *transport.Server, cl *cluster.Cluster) {
	mux := http.NewServeMux()
	mux.HandleFunc("/livez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, r *http.Request) {
		st := cl.Stats()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"served":%d,"shed":%d,"ops":%d,"nodes":%d,"down":%d}`+"\n",
			srv.Served(), srv.Shed(), st.Ops, len(st.Nodes), st.Down)
	})
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "bdserve: livez:", err)
	}
}
