// Command bdbench runs individual BigDataBench workloads and reports the
// user-perceivable metric (DPS/RPS/OPS, paper Section 6.1.2) and, when a
// machine model is selected, the architectural characterization counters.
//
// Examples:
//
//	bdbench -list
//	bdbench -workload WordCount -scale 4
//	bdbench -workload Grep -scale 32 -machine e5645
//	bdbench -workload "Nutch Server" -machine e5310 -reqs 500
//	bdbench -workload "Cluster OLTP" -shards 8 -replication 2 -clients 16
//	bdbench -workload "Cluster OLTP" -compaction leveled -blockcache 1048576
//	bdbench -workload Read -engine lsm -compaction leveled
//	bdbench -workload "Nutch Server" -shards 4
//	bdbench -listen 127.0.0.1:7421 -shards 2
//	bdbench -net -addr 127.0.0.1:7421,127.0.0.1:7422 -ops 50000 -clients 8
//	bdbench -net -chaos -dur 5s
//	bdbench -net -chaos -addr 127.0.0.1:7421,127.0.0.1:7422 -replication 2 -dur 3s
//	bdbench -net -addr 127.0.0.1:7421,127.0.0.1:7422 -replication 2 -trace
//	bdbench -net -addr 127.0.0.1:7421 -slo 5ms:0.999 -json -
//	bdbench -net -addr 127.0.0.1:7421,127.0.0.1:7422 -elastic -dur 5s
//	bdbench -net -resize -dur 8s -json -
//	bdbench -analytics wordcount -nodes 4
//	bdbench -analytics wordcount -local
//	bdbench -analytics pagerank -addr 127.0.0.1:7421,127.0.0.1:7422 -graphbits 12
//	bdbench -analytics wordcount -input engine -rows 20000
//	bdbench -workload Grep -scale 4 -json results.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the nineteen workloads and exit")
		name     = flag.String("workload", "", "workload name (see -list)")
		scale    = flag.Int("scale", 1, "data-volume multiplier over the Table 6 baseline")
		machine  = flag.String("machine", "none", "processor model: e5645, e5310 or none")
		unit     = flag.Int64("unit", core.DefaultScaleUnit, "bytes per paper-GB")
		pages    = flag.Int("pages", core.DefaultPagesPerMPage, "generated pages per paper 10^6 pages")
		reqs     = flag.Int("reqs", core.DefaultReqsPerUnit, "requests per paper 100 req/s unit")
		vertices = flag.Int("vertices", core.DefaultVertexUnit, "baseline graph vertices (power of two)")
		seed     = flag.Int64("seed", 1, "data-generation seed")
		workers  = flag.Int("workers", 4, "substrate parallelism")
		jsonPath = flag.String("json", "", `write machine-readable results JSON to this path ("-" = stdout)`)
		shards   = flag.Int("shards", 0, "shard count for the cluster-capable workloads (0 = workload default)")
		repl     = flag.Int("replication", 0, "copies per key for Cluster OLTP (0 = workload default)")
		clients  = flag.Int("clients", 0, "concurrent load generators for Cluster OLTP (0 = workload default)")
		engName  = flag.String("engine", "", "storage engine backend for the Cloud-OLTP workloads (default lsm; see internal/engine)")
		compact  = flag.String("compaction", "", "LSM compaction policy: size-tiered or leveled")
		bcache   = flag.Int("blockcache", 0, "block-cache bytes per engine (0 = default, negative disables)")
		netMode  = flag.Bool("net", false, "drive the Zipf 95/5 OLTP mix over sockets against the -addr shard servers")
		addrs    = flag.String("addr", "", "comma-separated shard server addresses for -net")
		listen   = flag.String("listen", "", "host shard nodes on this address instead of running a workload (bdserve embedded)")
		netOps   = flag.Int("ops", 50000, "total operations for -net")
		netBatch = flag.Int("batch", 64, "ops per client batch for -net")
		netRows  = flag.Int("rows", 10000, "preloaded resume rows for -net")
		netConns = flag.Int("conns", 1, "pooled connections per shard server for -net")
		traceEv  = flag.Int("traceevery", 0, "with -net: stamp a wire trace id on every Nth batch per client (0 disables)")
		traceRun = flag.Bool("trace", false, "with -net: after the run, drive one traced probe, fetch every server's spans over the wire and print the assembled trace")
		sloSpec  = flag.String("slo", "", "with -net: request-latency SLO as <threshold>:<target>, e.g. 5ms:0.999 (summary prints after the run and lands in -json)")
		netDur   = flag.Duration("dur", 0, "run -net for a wall-clock duration instead of -ops")
		chaos    = flag.Bool("chaos", false, "failure-aware -net: tolerate dying members; without -addr, self-host two shard servers and kill/restart them")
		killEv   = flag.Duration("killevery", 500*time.Millisecond, "period between chaos kills (self-hosted -chaos)")
		downFor  = flag.Duration("downfor", 300*time.Millisecond, "how long a chaos-killed server stays down")
		elastOn  = flag.Bool("elastic", false, "with -net: treat -addr as gossip seeds and join the epoch-versioned elastic cluster instead of wiring a static ring")
		resizeOn = flag.Bool("resize", false, "self-host an elastic cluster and resize it mid-run (join a member, retire another), reporting throughput/latency before, during and after the migrations")

		analyticsJob = flag.String("analytics", "", "run a distributed analytics job: wordcount, grep, sort, pagerank or kmeans")
		anLocal      = flag.Bool("local", false, "with -analytics: run the in-process reference engine instead of the cluster")
		anNodes      = flag.Int("nodes", 2, "self-hosted executor servers for -analytics without -addr")
		anInput      = flag.String("input", "", "map input source for -analytics: bdgs (default) or engine")
		anLines      = flag.Int("lines", 20000, "text records for -analytics wordcount/grep/sort (scaled by -scale)")
		anGraphBits  = flag.Int("graphbits", 11, "2^bits vertices for -analytics pagerank (plus log2 of -scale)")
		anVectors    = flag.Int("vectors", 4096, "vectors for -analytics kmeans (scaled by -scale)")
		anIters      = flag.Int("iters", 5, "supersteps for -analytics pagerank/kmeans")
		anMapTasks   = flag.Int("maptasks", 0, "map tasks for -analytics (0 = 2x executors)")
		anReducers   = flag.Int("reducers", 0, "reduce partitions for -analytics (0 = executor count)")

		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
		memProf = flag.String("memprofile", "", "write a post-GC heap profile at exit to this path")
	)
	flag.Parse()

	stopProf, perr := startProfiles(*cpuProf, *memProf)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "bdbench:", perr)
		os.Exit(2)
	}
	// Every exit path must flush the profiles: the run modes exit with
	// their own status codes, so they go through exit rather than
	// os.Exit; the defer covers the plain returns below.
	defer stopProf()
	exit := func(code int) {
		stopProf()
		os.Exit(code)
	}

	if *analyticsJob != "" {
		exit(runAnalytics(analyticsConfig{
			job: *analyticsJob, addrs: *addrs, local: *anLocal, nodes: *anNodes,
			input: *anInput, lines: *anLines, graphBits: *anGraphBits,
			vectors: *anVectors, iters: *anIters,
			mapTasks: *anMapTasks, reducers: *anReducers,
			scale: *scale, seed: *seed, workers: *workers, rows: *netRows,
			jsonPath: *jsonPath,
			engine: engine.Options{
				Backend: *engName, Compaction: *compact,
				BlockCacheBytes: *bcache, MemtableBytes: 1 << 20,
			},
		}))
	}

	if *listen != "" || *netMode || *resizeOn {
		cfg := netConfig{
			addrs: *addrs, listen: *listen, shards: *shards, repl: max(*repl, 1),
			clients: *clients, conns: *netConns, ops: *netOps, batch: *netBatch,
			rows: *netRows, seed: *seed, jsonPath: *jsonPath, traceEvery: *traceEv,
			trace: *traceRun, slo: *sloSpec,
			chaos: *chaos, killEvery: *killEv, downFor: *downFor, dur: *netDur,
			elastic: *elastOn, resize: *resizeOn,
			engine: engine.Options{
				Backend: *engName, Compaction: *compact,
				BlockCacheBytes: *bcache, MemtableBytes: 1 << 20,
			},
		}
		if cfg.clients <= 0 {
			cfg.clients = 8
		}
		if cfg.batch <= 0 {
			cfg.batch = 1
		}
		if cfg.rows < 64 {
			cfg.rows = 64
		}
		if *listen != "" {
			exit(runListen(cfg))
		}
		if cfg.resize {
			exit(runResize(cfg))
		}
		exit(runNet(cfg))
	}

	if *list {
		tab := &core.Table{Headers: []string{"Workload", "Type", "Stack", "Source", "Metric", "Baseline"}}
		for _, w := range append(workloads.All(), workloads.Extras()...) {
			tab.AddRow(w.Name(), w.Class().String(), w.Stack(), w.DataSource(),
				w.Metric().String(), w.BaselineInput())
		}
		fmt.Print(tab.Render())
		return
	}
	w := workloads.ByName(*name)
	if w == nil {
		fmt.Fprintf(os.Stderr, "bdbench: unknown workload %q (try -list)\n", *name)
		exit(2)
	}
	if *engName != "" || *compact != "" || *bcache != 0 {
		choice := workloads.EngineChoice{
			Engine: *engName, Compaction: *compact, BlockCacheBytes: *bcache,
		}
		if err := engine.Validate(engine.Options{
			Backend: choice.Engine, Compaction: choice.Compaction,
			BlockCacheBytes: choice.BlockCacheBytes,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", err)
			exit(2)
		}
		ec, ok := w.(workloads.EngineConfigurable)
		if !ok {
			fmt.Fprintf(os.Stderr, "bdbench: workload %q does not take engine flags\n", *name)
			exit(2)
		}
		ec.ConfigureEngine(choice)
	}
	switch cw := w.(type) {
	case *workloads.ClusterOLTPWorkload:
		if *shards > 0 {
			cw.Shards = *shards
		}
		if *repl > 0 {
			cw.Replication = *repl
		}
		if *clients > 0 {
			cw.Clients = *clients
		}
	case *workloads.NutchServerWorkload:
		if *shards > 0 {
			cw.IndexShards = *shards
		}
	}
	in := core.Input{
		Scale: *scale, ScaleUnit: *unit, PagesPerMPage: *pages,
		ReqsPerUnit: *reqs, VertexUnit: *vertices, Seed: *seed, Workers: *workers,
	}
	var res core.Result
	var err error
	var timing sim.TimingConfig
	switch strings.ToLower(*machine) {
	case "none", "":
		res, err = core.Measure(w, in)
	case "e5645":
		cfg := sim.XeonE5645()
		timing = cfg.Timing
		res, err = core.Characterize(w, in, cfg)
	case "e5310":
		cfg := sim.XeonE5310()
		timing = cfg.Timing
		res, err = core.Characterize(w, in, cfg)
	default:
		fmt.Fprintf(os.Stderr, "bdbench: unknown machine %q\n", *machine)
		exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdbench:", err)
		exit(1)
	}
	if *jsonPath == "-" {
		if err := core.WriteJSON(os.Stdout, []core.Result{res}); err != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", err)
			exit(1)
		}
		return
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err == nil {
			err = core.WriteJSON(f, []core.Result{res})
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", err)
			exit(1)
		}
		// The file is the machine record; the human report still prints.
	}

	fmt.Printf("%s  (scale %dx, seed %d)\n", res.Workload, res.Scale, *seed)
	fmt.Printf("  processed: %d %s in %v\n", res.Units, res.UnitName, res.Elapsed)
	fmt.Printf("  %s: %.1f %s/s\n", res.Metric, res.Value, res.UnitName)
	// Extra keys print sorted so runs are byte-for-byte diffable.
	extraKeys := make([]string, 0, len(res.Extra))
	for k := range res.Extra {
		extraKeys = append(extraKeys, k)
	}
	sort.Strings(extraKeys)
	for _, k := range extraKeys {
		fmt.Printf("  %s: %.4g\n", k, res.Extra[k])
	}
	if k := res.Counts; k.Instructions() > 0 {
		mix := k.Mix()
		fmt.Printf("architectural characterization (%s):\n", strings.ToUpper(*machine))
		fmt.Printf("  instructions: %d  (load %.1f%% store %.1f%% branch %.1f%% int %.1f%% fp %.1f%%)\n",
			k.Instructions(), mix.Load*100, mix.Store*100, mix.Branch*100,
			mix.Integer*100, mix.FP*100)
		fmt.Printf("  MPKI: L1I %.2f  L1D %.2f  L2 %.2f  L3 %.2f  ITLB %.2f  DTLB %.2f\n",
			k.L1IMPKI(), k.L1DMPKI(), k.L2MPKI(), k.L3MPKI(), k.ITLBMPKI(), k.DTLBMPKI())
		fmt.Printf("  MIPS %.0f  CPI %.2f  int/FP %.1f  FP intensity %.4f  int intensity %.3f\n",
			k.MIPS(timing), k.CPI(timing), k.IntToFPRatio(), k.FPIntensity(), k.IntIntensity())
		fmt.Printf("  DRAM traffic: %.1f MiB read, %.1f MiB written\n",
			float64(k.DRAMReadBytes)/(1<<20), float64(k.DRAMWriteBytes)/(1<<20))
	}
}
