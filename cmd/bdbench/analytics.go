package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/analytics"
	"repro/internal/bdgs"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/transport"
)

// analyticsConfig carries the -analytics flags out of main.
type analyticsConfig struct {
	job       string // wordcount | grep | sort | pagerank | kmeans
	addrs     string // external executor servers; empty self-hosts -nodes
	local     bool   // run the in-process reference instead
	nodes     int    // self-hosted executor servers
	input     string // bdgs | engine
	lines     int
	graphBits int
	vectors   int
	iters     int
	mapTasks  int
	reducers  int
	scale     int
	seed      int64
	workers   int
	rows      int // preloaded rows for -input engine
	jsonPath  string
	engine    engine.Options
}

// buildJob translates the flags into a JobSpec. -scale multiplies the
// input volume like the workload runner's scale knob.
func buildJob(cfg analyticsConfig) analytics.JobSpec {
	scale := cfg.scale
	if scale < 1 {
		scale = 1
	}
	job := analytics.JobSpec{
		Kind:       analytics.JobKind(cfg.job),
		Seed:       cfg.seed,
		Input:      cfg.input,
		Lines:      cfg.lines * scale,
		GraphBits:  cfg.graphBits + log2ceil(scale),
		Vectors:    cfg.vectors * scale,
		Iterations: cfg.iters,
		MapTasks:   cfg.mapTasks,
		Reducers:   cfg.reducers,
	}
	return job
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}

// itemName is the unit of the job's throughput metric.
func itemName(kind analytics.JobKind) string {
	switch kind {
	case analytics.PageRank:
		return "vertices"
	case analytics.KMeans:
		return "vectors"
	default:
		return "records"
	}
}

// runAnalytics executes one distributed analytics job (or its in-process
// reference with -local) and reports runtime, throughput, task latency
// and the result digest. The digest line is the comparison surface: a
// distributed run and a -local run of the same job must print the same
// digest, which scripts/transport_smoke.sh phase 3 diffs.
func runAnalytics(cfg analyticsConfig) int {
	job := buildJob(cfg)

	// With -json - the JSON record owns stdout (as in workload mode);
	// the human report is suppressed so the output stays parseable.
	human := cfg.jsonPath != "-"

	if cfg.local {
		res, err := analytics.RunLocal(job, cfg.workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", err)
			return 1
		}
		if human {
			printAnalytics(cfg, "local", 0, res)
		}
		return writeAnalyticsJSON(cfg, "local", 0, res, nil)
	}

	addrs, cleanup, err := analyticsServers(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdbench:", err)
		return 1
	}
	defer cleanup()

	// Engine input: preload rows through a KV coordinator (R=1 — each
	// row on exactly one executor) and keep the global scan around as
	// the in-process reference to diff against.
	var refPairs []mapreduce.KV
	if job.Input == analytics.InputEngine {
		refPairs, err = preloadEngineRows(cfg, job, addrs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", err)
			return 1
		}
	}

	coord, err := analytics.NewCoordinator(addrs, analytics.CoordinatorOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdbench:", err)
		return 1
	}
	defer coord.Close()
	reg := obs.NewRegistry()
	coord.RegisterMetrics(reg)
	before := reg.Snapshot()
	res, err := coord.Run(job)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdbench:", err)
		return 1
	}
	metricsDelta := obs.Delta(before, reg.Snapshot())
	if human {
		printAnalytics(cfg, "distributed", len(addrs), res)
	}
	if refPairs != nil {
		match := len(refPairs) == len(res.Pairs)
		for i := 0; match && i < len(refPairs); i++ {
			match = refPairs[i] == res.Pairs[i]
		}
		if human {
			fmt.Printf("  engine-input reference: %d pairs, match %v\n", len(refPairs), match)
		}
		if !match {
			fmt.Fprintln(os.Stderr, "bdbench: distributed engine-input result diverges from the in-process reference")
			return 1
		}
	}
	return writeAnalyticsJSON(cfg, "distributed", len(addrs), res, metricsDelta)
}

// analyticsServers resolves the executor fleet: the -addr list, or
// -nodes self-hosted in-process servers (each its own cluster + executor
// behind a real socket, so the wire path is exercised either way).
func analyticsServers(cfg analyticsConfig) (addrs []string, cleanup func(), err error) {
	for _, a := range strings.Split(cfg.addrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) > 0 {
		return addrs, func() {}, nil
	}
	if err := engine.Validate(cfg.engine); err != nil {
		return nil, nil, err
	}
	n := cfg.nodes
	if n <= 0 {
		n = 2
	}
	var closers []func()
	cleanup = func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		backend := cluster.New(cluster.Config{Shards: 1, Engine: cfg.engine})
		ex := analytics.NewExecutor(analytics.ExecutorConfig{
			Self:  ln.Addr().String(),
			Local: backend,
		})
		srv := transport.Serve(ln, backend, transport.ServerOptions{Tasks: ex})
		closers = append(closers, func() { srv.Close() }, ex.Close, backend.Close)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, cleanup, nil
}

// preloadEngineRows loads -rows resumé records across the executor
// servers and returns the in-process reference result computed from a
// coordinator-side global scan of the same data.
func preloadEngineRows(cfg analyticsConfig, job analytics.JobSpec, addrs []string) ([]mapreduce.KV, error) {
	kv := cluster.NewEmpty(cluster.Config{Replication: 1})
	defer kv.Close()
	for _, addr := range addrs {
		rn, err := transport.Connect(addr, transport.ClientOptions{})
		if err != nil {
			return nil, fmt.Errorf("connect %s: %w", addr, err)
		}
		if _, _, err := kv.AddRemote(rn); err != nil {
			return nil, fmt.Errorf("join %s: %w", addr, err)
		}
	}
	rows := cfg.rows
	if rows < 64 {
		rows = 64
	}
	var m bdgs.ResumeModel
	for _, re := range m.StableResumes(cfg.seed, 0, rows, rows) {
		if err := kv.Put([]byte(re.Key), re.Encode()); err != nil {
			return nil, fmt.Errorf("preload: %w", err)
		}
	}
	entries, err := kv.Scan(nil, 1<<30)
	if err != nil {
		return nil, fmt.Errorf("reference scan: %w", err)
	}
	recs := make([]mapreduce.Record, len(entries))
	for i, e := range entries {
		recs[i] = mapreduce.Record{Key: string(e.Key), Value: string(e.Value)}
	}
	ref, err := analytics.RunLocalRecords(job, cfg.workers, recs)
	if err != nil {
		return nil, err
	}
	return ref.Pairs, nil
}

// printAnalytics renders one run's human-readable report.
func printAnalytics(cfg analyticsConfig, mode string, nodes int, res *analytics.JobResult) {
	where := mode
	if nodes > 0 {
		where = fmt.Sprintf("%s, %d nodes", mode, nodes)
	}
	items := res.Job.Items()
	if res.InputRecords > 0 {
		items = res.InputRecords
	}
	unit := itemName(res.Job.Kind)
	fmt.Printf("analytics %s  (%s, seed %d)\n", res.Job.Kind, where, cfg.seed)
	fmt.Printf("  processed: %d %s in %v\n", items, unit, res.Elapsed.Round(time.Microsecond))
	fmt.Printf("  DPS: %.1f %s/s\n", float64(items)/res.Elapsed.Seconds(), unit)
	fmt.Printf("  tasks: %d maps, %d reduces, %d retries\n",
		res.MapTasks, res.ReduceTasks, res.Retries)
	if res.RecoveryRounds > 0 {
		fmt.Printf("  recovery: %d lost-shuffle map re-run rounds\n", res.RecoveryRounds)
	}
	if res.Job.Trace != 0 {
		fmt.Printf("  trace: %d (grep it in the executors' /tracez)\n", res.Job.Trace)
	}
	if res.ShuffleBytes > 0 {
		fmt.Printf("  shuffle: %.1f KiB\n", float64(res.ShuffleBytes)/1024)
	}
	if res.TaskLatency.Count > 0 {
		fmt.Printf("  task latency: %s\n", res.TaskLatency)
	}
	fmt.Printf("  digest: %016x\n", res.Digest())
}

// analyticsJSON is the machine-readable record one run appends to the
// BENCH_*.json trajectory.
type analyticsJSON struct {
	Mode         string  `json:"mode"`
	Job          string  `json:"job"`
	Nodes        int     `json:"nodes"`
	Items        int     `json:"items"`
	Unit         string  `json:"unit"`
	ElapsedNs    int64   `json:"elapsedNs"`
	ItemsPerSec  float64 `json:"itemsPerSec"`
	MapTasks     int     `json:"mapTasks"`
	ReduceTasks  int     `json:"reduceTasks"`
	Retries      int     `json:"retries"`
	ShuffleBytes int64   `json:"shuffleBytes"`
	TaskP50Us    float64 `json:"taskP50Us"`
	TaskP95Us    float64 `json:"taskP95Us"`
	TaskP99Us    float64 `json:"taskP99Us"`
	Digest       string  `json:"digest"`
	// Trace is the job's wire trace id (decimal; 0 for -local runs),
	// RecoveryRounds the lost-shuffle map re-runs it took.
	Trace          uint64 `json:"trace,string,omitempty"`
	RecoveryRounds int    `json:"recoveryRounds,omitempty"`
	// Metrics is the coordinator's obs registry delta across the run
	// (bd_analytics_* counters).
	Metrics map[string]obs.Value `json:"metrics,omitempty"`
}

func writeAnalyticsJSON(cfg analyticsConfig, mode string, nodes int, res *analytics.JobResult,
	metrics map[string]obs.Value) int {
	if cfg.jsonPath == "" {
		return 0
	}
	items := res.Job.Items()
	if res.InputRecords > 0 {
		items = res.InputRecords
	}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	rec := analyticsJSON{
		Mode: mode, Job: string(res.Job.Kind), Nodes: nodes,
		Items: items, Unit: itemName(res.Job.Kind),
		ElapsedNs:   res.Elapsed.Nanoseconds(),
		ItemsPerSec: float64(items) / res.Elapsed.Seconds(),
		MapTasks:    res.MapTasks, ReduceTasks: res.ReduceTasks,
		Retries: res.Retries, ShuffleBytes: res.ShuffleBytes,
		TaskP50Us: us(res.TaskLatency.P50), TaskP95Us: us(res.TaskLatency.P95),
		TaskP99Us: us(res.TaskLatency.P99),
		Digest:    fmt.Sprintf("%016x", res.Digest()),
		Trace:     res.Job.Trace, RecoveryRounds: res.RecoveryRounds,
		Metrics: metrics,
	}
	if err := writeJSONFile(cfg.jsonPath, rec); err != nil {
		fmt.Fprintln(os.Stderr, "bdbench:", err)
		return 1
	}
	return 0
}

// writeJSONFile writes v as indented JSON to path ("-" = stdout).
func writeJSONFile(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
