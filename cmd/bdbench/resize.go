package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bdgs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Resize-run tuning. The migration rate is deliberately modest so the
// "during" windows actually overlap the copy passes on the default
// 10k-row dataset (a few MiB): fast enough to settle within a quarter
// of the default 8s run, slow enough to show up in it.
const (
	resizeProbeInterval = 25 * time.Millisecond
	resizeMigrateRate   = 4 << 20
)

// resizeWindowNames labels the four measurement windows: steady state
// on the two seed members, a third member joining and pulling its
// keyranges, an original member draining out gracefully, and the
// settled resized cluster.
var resizeWindowNames = [4]string{"before", "join-migration", "leave-drain", "after"}

// resizeMember is one self-hosted elastic data node: its own engine,
// cluster and transport server, joined to the others by gossip exactly
// as a separate `bdserve -join` process would be.
type resizeMember struct {
	addr string
	cl   *cluster.Cluster
	srv  *transport.Server
}

func startResizeMember(cfg netConfig, seeds []string) (*resizeMember, error) {
	// Bind before cluster.New: the member's ring identity is its
	// resolved listen address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	var cl *cluster.Cluster
	cl = cluster.New(cluster.Config{
		Shards: 1, Replication: cfg.repl, Engine: cfg.engine,
		SelfAddr:      ln.Addr().String(),
		ProbeInterval: resizeProbeInterval,
		ProbeFailures: 2,
		MigrateRate:   resizeMigrateRate,
		Dial: func(addr string) (cluster.Remote, error) {
			return transport.Connect(addr, transport.ClientOptions{
				Timeout:     2 * time.Second,
				DialTimeout: 250 * time.Millisecond,
				PingTimeout: 250 * time.Millisecond,
				// A peer that bounces our forward (its ring disagrees)
				// answers with its view: adopt it so the next probe round
				// is not the only path to convergence.
				OnView: func(view []byte) {
					if cl != nil {
						_ = cl.AdoptEncodedView(view)
					}
				},
			})
		},
	})
	srv := transport.Serve(ln, cl, transport.ServerOptions{})
	m := &resizeMember{addr: ln.Addr().String(), cl: cl, srv: srv}
	if len(seeds) > 0 {
		if err := cl.Join(seeds...); err != nil {
			srv.Close()
			cl.Close()
			return nil, err
		}
	}
	return m, nil
}

func (m *resizeMember) close() {
	m.srv.Close()
	m.cl.Close()
}

// waitConverged polls until every given cluster reports the same epoch
// with migration settled — the convergence proof the elastic design
// owes: bounded probe rounds after the last membership change, every
// live node agrees on ownership. Returns the last epoch seen.
func waitConverged(timeout time.Duration, cls ...*cluster.Cluster) (uint64, bool) {
	deadline := time.Now().Add(timeout)
	for {
		epoch := cls[0].ViewEpoch()
		agreed := cls[0].Settled()
		for _, c := range cls[1:] {
			if c.ViewEpoch() != epoch || !c.Settled() {
				agreed = false
			}
		}
		if agreed {
			return epoch, true
		}
		if time.Now().After(deadline) {
			return epoch, false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// onRingMembers counts the view rows that currently own ring arcs and
// are not failure-suspected dead weight (Alive or Suspect).
func onRingMembers(c *cluster.Cluster) int {
	n := 0
	for _, m := range c.View().Members {
		if m.Status == cluster.StatusAlive || m.Status == cluster.StatusSuspect {
			n++
		}
	}
	return n
}

// resizeWindow is one measurement window's slice of the run record.
type resizeWindow struct {
	Name      string  `json:"name"`
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"opsPerSec"`
	LatP50Us  float64 `json:"latP50Us"`
	LatP99Us  float64 `json:"latP99Us"`
	LatMaxUs  float64 `json:"latMaxUs"`
}

// runResize measures elasticity itself: the Zipf 95/5 mix runs
// continuously while the cluster resizes under it. Two self-hosted
// members serve the first quarter of the run; a third joins at the
// quarter mark (throttled migration pulls its keyranges while traffic
// continues); an original member leaves gracefully at the half; the
// final quarter measures the settled resized cluster. The report
// breaks throughput and latency into those four windows and finishes
// with the two checks that make the run a proof rather than a demo:
// all survivors agree on one settled epoch, and every preloaded row
// reads back intact — zero lost acknowledged writes.
func runResize(cfg netConfig) int {
	if cfg.addrs != "" {
		fmt.Fprintln(os.Stderr, "bdbench: -resize self-hosts its servers; drop -addr (use -net -elastic to drive external ones)")
		return 2
	}
	if err := engine.Validate(cfg.engine); err != nil {
		fmt.Fprintln(os.Stderr, "bdbench:", err)
		return 2
	}
	dur := cfg.dur
	if dur <= 0 {
		dur = 8 * time.Second
	}
	window := dur / 4

	a, err := startResizeMember(cfg, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdbench: start member:", err)
		return 1
	}
	defer a.close()
	b, err := startResizeMember(cfg, []string{a.addr})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdbench: start member:", err)
		return 1
	}
	// b is closed by the leave sequence mid-run; the handle stays live
	// for its migration counters.
	defer b.cl.Close()
	if _, ok := waitConverged(5*time.Second, a.cl, b.cl); !ok {
		fmt.Fprintln(os.Stderr, "bdbench: seed members never converged")
		return 1
	}

	coordCfg := cluster.Config{
		Replication:   cfg.repl,
		ProbeInterval: resizeProbeInterval,
		ProbeFailures: 2,
	}
	clientOpts := transport.ClientOptions{
		Conns: cfg.conns, Timeout: 2 * time.Second,
		DialTimeout: 250 * time.Millisecond, PingTimeout: 250 * time.Millisecond,
	}
	coord, ps, err := newElasticCoordinator(coordCfg, clientOpts, []string{a.addr, b.addr})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdbench: join:", err)
		return 1
	}
	defer coord.Close()
	reg := obs.NewRegistry()
	coord.RegisterMetrics(reg)
	transport.RegisterPoolMetrics(reg)
	ps.register(reg)

	// Untimed bulk load through the coordinator, values retained for the
	// final read-back audit.
	var m bdgs.ResumeModel
	resumes := m.Generate(cfg.seed, cfg.rows)
	vals := make([][]byte, cfg.rows)
	load := make([]cluster.Op, 0, 256)
	for i, re := range resumes {
		vals[i] = re.Encode()
		load = append(load, cluster.Op{Kind: cluster.OpPut, Key: []byte(re.Key), Value: vals[i]})
		if len(load) == cap(load) {
			if _, err := coord.Apply(load); err != nil {
				fmt.Fprintln(os.Stderr, "bdbench: preload:", err)
				return 1
			}
			load = load[:0]
		}
	}
	if len(load) > 0 {
		if _, err := coord.Apply(load); err != nil {
			fmt.Fprintln(os.Stderr, "bdbench: preload:", err)
			return 1
		}
	}

	const readFraction = 0.95
	recs := make([][4]core.LatencyRecorder, cfg.clients)
	errs := make([]error, cfg.clients)
	var degraded atomic.Int64
	var phase atomic.Int32
	stop := make(chan struct{})
	var wg sync.WaitGroup
	before := reg.Snapshot()
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + 919*int64(c+1)))
			z := rand.NewZipf(rng, 1.1, 4, uint64(cfg.rows-1))
			ops := make([]cluster.Op, 0, cfg.batch)
			consecFails := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				ops = ops[:0]
				for len(ops) < cfg.batch {
					row := int(z.Uint64())
					key := []byte(bdgs.ResumeKey(row))
					if rng.Float64() < readFraction {
						ops = append(ops, cluster.Op{Kind: cluster.OpGet, Key: key})
					} else {
						ops = append(ops, cluster.Op{Kind: cluster.OpPut, Key: key, Value: vals[row]})
					}
				}
				opStart := time.Now()
				if _, err := coord.Apply(ops); err != nil {
					// Failure-aware by construction: a batch racing a view
					// change is degraded, not fatal — the next attempt
					// rides the adopted view.
					degraded.Add(1)
					if consecFails++; consecFails < 20000 {
						time.Sleep(time.Millisecond)
						continue
					}
					errs[c] = err
					return
				}
				consecFails = 0
				d := time.Since(opStart)
				w := phase.Load()
				for range ops {
					recs[c][w].Record(d)
				}
			}
		}(c)
	}

	// The resize timeline, quarter by quarter.
	wStart := [4]time.Time{start}
	time.Sleep(window)
	joiner, joinErr := startResizeMember(cfg, []string{a.addr})
	wStart[1] = time.Now()
	phase.Store(1)
	if joinErr != nil {
		close(stop)
		wg.Wait()
		fmt.Fprintln(os.Stderr, "bdbench: mid-run join:", joinErr)
		return 1
	}
	defer joiner.close()
	time.Sleep(window)
	wStart[2] = time.Now()
	phase.Store(2)
	leaveDone := make(chan error, 1)
	go func() {
		// Graceful leave drains b's keyranges out before it declares
		// Left; the server stays up through the drain (peer fallbacks
		// and gossip still land on it) and closes after.
		lerr := b.cl.Leave(window + 5*time.Second)
		b.srv.Close()
		leaveDone <- lerr
	}()
	time.Sleep(window)
	wStart[3] = time.Now()
	phase.Store(3)
	time.Sleep(window)
	close(stop)
	wg.Wait()
	end := time.Now()
	elapsed := end.Sub(start)
	metricsDelta := obs.Delta(before, reg.Snapshot())
	for _, werr := range errs {
		if werr != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", werr)
			return 1
		}
	}
	if lerr := <-leaveDone; lerr != nil {
		fmt.Fprintln(os.Stderr, "bdbench: leave:", lerr)
		return 1
	}

	// Convergence proof: the survivors and the coordinator agree on one
	// settled epoch within bounded probe rounds of the last change.
	convStart := time.Now()
	epoch, converged := waitConverged(10*time.Second, a.cl, joiner.cl, coord)
	convergeNs := time.Since(convStart)
	live := onRingMembers(coord)
	if !converged {
		// No point auditing ownership the members disagree on; report
		// the disagreement itself.
		for name, c := range map[string]*cluster.Cluster{"a": a.cl, "b": b.cl, "joiner": joiner.cl, "coord": coord} {
			fmt.Fprintf(os.Stderr, "bdbench: %-6s epoch %d settled %v members %d\n",
				name, c.ViewEpoch(), c.Settled(), len(c.View().Members))
		}
		fmt.Fprintln(os.Stderr, "bdbench: cluster never converged after resize")
		return 1
	}

	// Zero-lost-acknowledged-writes audit: every preloaded row must read
	// back intact through the resized cluster. The run only ever writes
	// vals[row] back, so any mismatch is a lost or corrupted write.
	lost := 0
	check := make([]cluster.Op, 0, 256)
	checkRows := make([]int, 0, 256)
	flushAudit := func() bool {
		res, aerr := coord.Apply(check)
		if aerr != nil {
			fmt.Fprintln(os.Stderr, "bdbench: audit:", aerr)
			return false
		}
		for j, r := range res {
			if !r.Found || !bytes.Equal(r.Value, vals[checkRows[j]]) {
				lost++
			}
		}
		check = check[:0]
		checkRows = checkRows[:0]
		return true
	}
	for i := range vals {
		check = append(check, cluster.Op{Kind: cluster.OpGet, Key: []byte(bdgs.ResumeKey(i))})
		checkRows = append(checkRows, i)
		if len(check) == cap(check) && !flushAudit() {
			return 1
		}
	}
	if len(check) > 0 && !flushAudit() {
		return 1
	}

	migKeys, migBytes, migDropped := uint64(0), uint64(0), uint64(0)
	for _, c := range []*cluster.Cluster{a.cl, b.cl, joiner.cl} {
		k, by, dr := c.MigrationStats()
		migKeys += k
		migBytes += by
		migDropped += dr
	}

	windows := make([]resizeWindow, 4)
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	for w := range windows {
		var lat core.LatencyRecorder
		for c := range recs {
			lat.Merge(&recs[c][w])
		}
		wEnd := end
		if w < 3 {
			wEnd = wStart[w+1]
		}
		sum := lat.Summary()
		windows[w] = resizeWindow{
			Name: resizeWindowNames[w], Ops: sum.Count,
			OpsPerSec: float64(sum.Count) / wEnd.Sub(wStart[w]).Seconds(),
			LatP50Us:  us(sum.P50), LatP99Us: us(sum.P99), LatMaxUs: us(sum.Max),
		}
	}

	if cfg.jsonPath != "-" {
		fmt.Printf("net OLTP resize  (2 members +1 join -1 leave, %d clients, batch %d, seed %d)\n",
			cfg.clients, cfg.batch, cfg.seed)
		fmt.Printf("  elapsed: %v (%d preloaded rows untimed)\n", elapsed.Round(time.Millisecond), cfg.rows)
		for _, w := range windows {
			fmt.Printf("  %-15s %9.1f ops/s  p50 %7.0fus  p99 %7.0fus  (%d ops)\n",
				w.Name+":", w.OpsPerSec, w.LatP50Us, w.LatP99Us, w.Ops)
		}
		fmt.Printf("  migration: %d keys, %d bytes pushed, %d dropped post-settle\n",
			migKeys, migBytes, migDropped)
		fmt.Printf("  convergence: epoch %d, %d live members, settled in %v (%d degraded batches)\n",
			epoch, live, convergeNs.Round(time.Millisecond), degraded.Load())
		fmt.Printf("  audit: %d/%d rows intact, %d lost\n", cfg.rows-lost, cfg.rows, lost)
	}
	if cfg.jsonPath != "" {
		rec := struct {
			Mode       string         `json:"mode"`
			Clients    int            `json:"clients"`
			Batch      int            `json:"batch"`
			Rows       int            `json:"rows"`
			ElapsedNs  int64          `json:"elapsedNs"`
			Windows    []resizeWindow `json:"windows"`
			Epoch      uint64         `json:"epoch"`
			Members    int            `json:"liveMembers"`
			Converged  bool           `json:"converged"`
			ConvergeNs int64          `json:"convergeNs"`
			MigKeys    uint64         `json:"migratedKeys"`
			MigBytes   uint64         `json:"migratedBytes"`
			MigDropped uint64         `json:"droppedKeys"`
			Degraded   int64          `json:"degradedBatches"`
			LostKeys   int            `json:"lostKeys"`
			// Metrics is the coordinator-side obs registry delta across
			// the timed phase (bd_cluster_* epoch/gossip/migration
			// series included).
			Metrics map[string]obs.Value `json:"metrics,omitempty"`
		}{
			Mode: "resize", Clients: cfg.clients, Batch: cfg.batch, Rows: cfg.rows,
			ElapsedNs: elapsed.Nanoseconds(), Windows: windows,
			Epoch: epoch, Members: live, Converged: converged,
			ConvergeNs: int64(convergeNs),
			MigKeys:    migKeys, MigBytes: migBytes, MigDropped: migDropped,
			Degraded: degraded.Load(), LostKeys: lost,
			Metrics: metricsDelta,
		}
		if err := writeJSONFile(cfg.jsonPath, rec); err != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", err)
			return 1
		}
	}
	switch {
	case !converged:
		fmt.Fprintf(os.Stderr, "bdbench: cluster never converged (epochs %d/%d/%d, coord %d)\n",
			a.cl.ViewEpoch(), b.cl.ViewEpoch(), joiner.cl.ViewEpoch(), coord.ViewEpoch())
		return 1
	case live != 2:
		fmt.Fprintf(os.Stderr, "bdbench: expected 2 live members after resize, have %d\n", live)
		return 1
	case lost > 0:
		fmt.Fprintf(os.Stderr, "bdbench: %d acknowledged writes lost across the resize\n", lost)
		return 1
	case migKeys == 0:
		fmt.Fprintln(os.Stderr, "bdbench: resize moved no keys (migration never ran?)")
		return 1
	}
	return 0
}
