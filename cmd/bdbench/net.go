package main

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bdgs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/transport"
)

// netConfig carries the networked-mode flags out of main.
type netConfig struct {
	addrs   string // comma-separated shard servers (-net client mode)
	listen  string // serve mode listen address
	shards  int
	repl    int
	clients int
	conns   int
	ops     int
	batch   int
	rows    int
	seed    int64
	engine  engine.Options
}

// runListen hosts shard nodes for remote coordinators — bdserve embedded
// in bdbench for single-binary experiments, sharing bdserve's
// serve-and-drain flow (transport.ServeUntilSignal). Blocks until
// SIGINT/SIGTERM, then drains gracefully.
func runListen(cfg netConfig) int {
	if err := engine.Validate(cfg.engine); err != nil {
		fmt.Fprintln(os.Stderr, "bdbench:", err)
		return 2
	}
	shards := cfg.shards
	if shards <= 0 {
		shards = 1
	}
	cl := cluster.New(cluster.Config{Shards: shards, Replication: cfg.repl, Engine: cfg.engine})
	srv, err := transport.ServeUntilSignal(cfg.listen, cl, transport.ServerOptions{},
		func(s *transport.Server) {
			fmt.Printf("bdbench: serving %d shards on %s\n", shards, s.Addr())
		})
	if err != nil && srv == nil {
		fmt.Fprintln(os.Stderr, "bdbench:", err)
		return 1
	}
	cl.Close()
	fmt.Printf("bdbench: drained; served %d requests\n", srv.Served())
	return 0
}

// runNet drives the paper's Zipf 95/5 Cloud-OLTP mix over real sockets:
// a client-side coordinator routes to the shard servers in -addr, with
// closed-loop clients submitting batches and recording the service time
// each op rode in — the testbed measurement the in-process workloads
// cannot express.
func runNet(cfg netConfig) int {
	addrs := strings.Split(cfg.addrs, ",")
	coord := cluster.NewEmpty(cluster.Config{Replication: cfg.repl})
	defer coord.Close()
	for _, addr := range addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		rn, err := transport.Connect(addr, transport.ClientOptions{Conns: cfg.conns})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bdbench: connect %s: %v\n", addr, err)
			return 1
		}
		if _, _, err := coord.AddRemote(rn); err != nil {
			fmt.Fprintf(os.Stderr, "bdbench: join %s: %v\n", addr, err)
			return 1
		}
	}
	if coord.Nodes() == 0 {
		fmt.Fprintln(os.Stderr, "bdbench: -net needs at least one -addr shard server")
		return 2
	}

	// Untimed bulk load, values pre-encoded so the timed phase measures
	// the serving path.
	var m bdgs.ResumeModel
	resumes := m.Generate(cfg.seed, cfg.rows)
	vals := make([][]byte, cfg.rows)
	load := make([]cluster.Op, 0, 256)
	for i, re := range resumes {
		vals[i] = re.Encode()
		load = append(load, cluster.Op{Kind: cluster.OpPut, Key: []byte(re.Key), Value: vals[i]})
		if len(load) == cap(load) {
			if _, err := coord.Apply(load); err != nil {
				fmt.Fprintln(os.Stderr, "bdbench: preload:", err)
				return 1
			}
			load = load[:0]
		}
	}
	if len(load) > 0 {
		if _, err := coord.Apply(load); err != nil {
			fmt.Fprintln(os.Stderr, "bdbench: preload:", err)
			return 1
		}
	}

	const readFraction = 0.95
	recs := make([]core.LatencyRecorder, cfg.clients)
	errs := make([]error, cfg.clients)
	var issued atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + 707*int64(c+1)))
			z := rand.NewZipf(rng, 1.1, 4, uint64(cfg.rows-1))
			ops := make([]cluster.Op, 0, cfg.batch)
			for {
				n := int(issued.Add(int64(cfg.batch)))
				if n-cfg.batch >= cfg.ops {
					return
				}
				want := cfg.batch
				if over := n - cfg.ops; over > 0 {
					want -= over
				}
				ops = ops[:0]
				for len(ops) < want {
					row := int(z.Uint64())
					key := []byte(bdgs.ResumeKey(row))
					if rng.Float64() < readFraction {
						ops = append(ops, cluster.Op{Kind: cluster.OpGet, Key: key})
					} else {
						ops = append(ops, cluster.Op{Kind: cluster.OpPut, Key: key, Value: vals[row]})
					}
				}
				opStart := time.Now()
				if _, err := coord.Apply(ops); err != nil {
					errs[c] = err
					return
				}
				d := time.Since(opStart)
				for range ops {
					recs[c].Record(d)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", err)
			return 1
		}
	}
	var lat core.LatencyRecorder
	for c := range recs {
		lat.Merge(&recs[c])
	}
	st := coord.Stats()
	sum := lat.Summary()
	fmt.Printf("net OLTP  (%d shard servers, %d clients, batch %d, seed %d)\n",
		coord.Nodes(), cfg.clients, cfg.batch, cfg.seed)
	fmt.Printf("  processed: %d ops in %v (%d preloaded rows untimed)\n",
		sum.Count, elapsed.Round(time.Millisecond), cfg.rows)
	fmt.Printf("  OPS: %.1f ops/s\n", float64(sum.Count)/elapsed.Seconds())
	fmt.Printf("  latency: %s\n", sum)
	fmt.Printf("  remote: accepted %d, rejected %d, batches %d\n",
		st.Accepted, st.Rejected, st.Batches)
	return 0
}
