package main

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bdgs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/transport"
)

// netConfig carries the networked-mode flags out of main.
type netConfig struct {
	addrs    string // comma-separated shard servers (-net client mode)
	listen   string // serve mode listen address
	shards   int
	repl     int
	clients  int
	conns    int
	ops      int
	batch    int
	rows     int
	seed     int64
	jsonPath string // machine-readable results ("" = none, "-" = stdout)
	engine   engine.Options

	// traceEvery stamps a fresh wire trace id on every Nth batch per
	// client (0 disables), so a sampled slice of the run shows up in the
	// servers' /tracez span logs without tracing the whole load.
	traceEvery int

	// chaos mode: kill/restart a shard server mid-run and keep serving.
	chaos     bool
	killEvery time.Duration // period between kills (self-hosted chaos)
	downFor   time.Duration // how long a killed server stays down
	dur       time.Duration // run for a wall-clock duration instead of -ops
}

// runListen hosts shard nodes for remote coordinators — bdserve embedded
// in bdbench for single-binary experiments, sharing bdserve's
// serve-and-drain flow (transport.ServeUntilSignal). Blocks until
// SIGINT/SIGTERM, then drains gracefully.
func runListen(cfg netConfig) int {
	if err := engine.Validate(cfg.engine); err != nil {
		fmt.Fprintln(os.Stderr, "bdbench:", err)
		return 2
	}
	shards := cfg.shards
	if shards <= 0 {
		shards = 1
	}
	cl := cluster.New(cluster.Config{Shards: shards, Replication: cfg.repl, Engine: cfg.engine})
	srv, err := transport.ServeUntilSignal(cfg.listen, cl, transport.ServerOptions{},
		func(s *transport.Server) {
			fmt.Printf("bdbench: serving %d shards on %s\n", shards, s.Addr())
		})
	if err != nil && srv == nil {
		fmt.Fprintln(os.Stderr, "bdbench:", err)
		return 1
	}
	cl.Close()
	fmt.Printf("bdbench: drained; served %d requests\n", srv.Served())
	return 0
}

// chaosServer is one self-hosted shard server the chaos controller can
// crash and restart: Close() drops the listener and every connection
// (the coordinator sees the member die), reopen rebinds the same
// address over the surviving backend — the durable-storage restart
// model.
type chaosServer struct {
	addr    string
	backend *cluster.Cluster
	srv     *transport.Server
}

// runChaosController kills one server at a time round-robin: down for
// cfg.downFor, then restarted, with cfg.killEvery between kill times.
// It returns the kill count after stop closes.
func runChaosController(servers []*chaosServer, cfg netConfig, stop <-chan struct{}) *atomic.Int64 {
	kills := &atomic.Int64{}
	go func() {
		victim := 0
		for {
			select {
			case <-stop:
				return
			case <-time.After(cfg.killEvery):
			}
			s := servers[victim%len(servers)]
			victim++
			s.srv.Close()
			kills.Add(1)
			select {
			case <-stop:
				// Restart even on shutdown so the drain below finds a
				// live server to close.
			case <-time.After(cfg.downFor):
			}
			srv, err := transport.Listen(s.addr, s.backend, transport.ServerOptions{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "bdbench: chaos restart %s: %v\n", s.addr, err)
				return
			}
			s.srv = srv
		}
	}()
	return kills
}

// runNet drives the paper's Zipf 95/5 Cloud-OLTP mix over real sockets:
// a client-side coordinator routes to the shard servers in -addr, with
// closed-loop clients submitting batches and recording the service time
// each op rode in — the testbed measurement the in-process workloads
// cannot express.
//
// With -chaos the run is failure-aware end to end: workers tolerate the
// transient errors a dying member throws (counted as degraded batches)
// while the coordinator's prober marks it down, fails reads and writes
// over to surviving replicas, and replays hinted writes on recovery.
// Without -addr, chaos self-hosts two in-process shard servers and
// kills/restarts them on a timer; with -addr the kills are external
// (e.g. scripts/transport_smoke.sh SIGKILLing a bdserve) and bdbench
// just has to keep serving through them.
func runNet(cfg netConfig) int {
	var addrs []string
	for _, addr := range strings.Split(cfg.addrs, ",") {
		if addr = strings.TrimSpace(addr); addr != "" {
			addrs = append(addrs, addr)
		}
	}

	var chaosServers []*chaosServer
	if cfg.chaos && len(addrs) == 0 {
		// Self-hosted chaos: two shard servers in-process, so one binary
		// demonstrates the whole crash/recovery cycle.
		for i := 0; i < 2; i++ {
			backend := cluster.New(cluster.Config{Shards: 1, Engine: cfg.engine})
			srv, err := transport.Listen("127.0.0.1:0", backend, transport.ServerOptions{})
			if err != nil {
				fmt.Fprintln(os.Stderr, "bdbench: chaos listen:", err)
				return 1
			}
			cs := &chaosServer{addr: srv.Addr(), backend: backend, srv: srv}
			chaosServers = append(chaosServers, cs)
			addrs = append(addrs, cs.addr)
			defer backend.Close()
		}
		if cfg.repl < 2 {
			cfg.repl = 2 // a lone copy cannot survive its server's death
		}
	}

	coordCfg := cluster.Config{Replication: cfg.repl}
	clientOpts := transport.ClientOptions{Conns: cfg.conns}
	if cfg.chaos {
		// Aggressive detection, fail-fast redials: with the patient
		// defaults a short outage is bridged by the client's dial-retry
		// loop and failover never engages — the run would measure a
		// stall, not the failure machinery it exists to exercise.
		coordCfg.ProbeInterval = 20 * time.Millisecond
		coordCfg.ProbeFailures = 2
		// Outage windows at full load buffer tens of thousands of missed
		// writes; size the handoff buffer so convergence doesn't shed.
		coordCfg.HintLimit = 1 << 17
		clientOpts.Timeout = 2 * time.Second
		clientOpts.DialTimeout = 100 * time.Millisecond
		clientOpts.PingTimeout = 100 * time.Millisecond
	}
	coord := cluster.NewEmpty(coordCfg)
	defer coord.Close()
	// The run's own client-side observability: the coordinator's health
	// and failover counters plus each peer connection's retry/redial
	// counters, snapshotted around the timed phase so the JSON record
	// reports exactly what the measured load did (obs.Delta).
	reg := obs.NewRegistry()
	coord.RegisterMetrics(reg)
	// Frame-pool hit/miss counters: the client side of the §12 pooled
	// hot path, so a pool-efficiency regression shows in the run record.
	transport.RegisterPoolMetrics(reg)
	for _, addr := range addrs {
		rn, err := transport.Connect(addr, clientOpts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bdbench: connect %s: %v\n", addr, err)
			return 1
		}
		rn.RegisterMetrics(reg, obs.Labels{"peer": addr})
		if _, _, err := coord.AddRemote(rn); err != nil {
			fmt.Fprintf(os.Stderr, "bdbench: join %s: %v\n", addr, err)
			return 1
		}
	}
	if coord.Nodes() == 0 {
		fmt.Fprintln(os.Stderr, "bdbench: -net needs at least one -addr shard server (or -chaos)")
		return 2
	}

	// Untimed bulk load, values pre-encoded so the timed phase measures
	// the serving path.
	var m bdgs.ResumeModel
	resumes := m.Generate(cfg.seed, cfg.rows)
	vals := make([][]byte, cfg.rows)
	load := make([]cluster.Op, 0, 256)
	for i, re := range resumes {
		vals[i] = re.Encode()
		load = append(load, cluster.Op{Kind: cluster.OpPut, Key: []byte(re.Key), Value: vals[i]})
		if len(load) == cap(load) {
			if _, err := coord.Apply(load); err != nil {
				fmt.Fprintln(os.Stderr, "bdbench: preload:", err)
				return 1
			}
			load = load[:0]
		}
	}
	if len(load) > 0 {
		if _, err := coord.Apply(load); err != nil {
			fmt.Fprintln(os.Stderr, "bdbench: preload:", err)
			return 1
		}
	}

	stopChaos := make(chan struct{})
	var kills *atomic.Int64
	if len(chaosServers) > 0 {
		kills = runChaosController(chaosServers, cfg, stopChaos)
	}

	const readFraction = 0.95
	recs := make([]core.LatencyRecorder, cfg.clients)
	errs := make([]error, cfg.clients)
	var issued atomic.Int64
	var degraded atomic.Int64
	deadline := time.Time{}
	if cfg.dur > 0 {
		deadline = time.Now().Add(cfg.dur)
	}
	var wg sync.WaitGroup
	before := reg.Snapshot()
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + 707*int64(c+1)))
			z := rand.NewZipf(rng, 1.1, 4, uint64(cfg.rows-1))
			ops := make([]cluster.Op, 0, cfg.batch)
			consecFails := 0
			batchNo := 0
			for {
				want := cfg.batch
				if cfg.dur > 0 {
					if !time.Now().Before(deadline) {
						return
					}
					issued.Add(int64(cfg.batch))
				} else {
					n := int(issued.Add(int64(cfg.batch)))
					if n-cfg.batch >= cfg.ops {
						return
					}
					if over := n - cfg.ops; over > 0 {
						want -= over
					}
				}
				ops = ops[:0]
				for len(ops) < want {
					row := int(z.Uint64())
					key := []byte(bdgs.ResumeKey(row))
					if rng.Float64() < readFraction {
						ops = append(ops, cluster.Op{Kind: cluster.OpGet, Key: key})
					} else {
						ops = append(ops, cluster.Op{Kind: cluster.OpPut, Key: key, Value: vals[row]})
					}
				}
				if batchNo++; cfg.traceEvery > 0 && batchNo%cfg.traceEvery == 0 {
					t := obs.NewTraceID()
					for i := range ops {
						ops[i].Trace = t
					}
				}
				opStart := time.Now()
				if _, err := coord.Apply(ops); err != nil {
					if cfg.chaos {
						// Failure-aware serving: a batch that hit a dying
						// member is degraded, not fatal — the prober will
						// reroute; keep the load coming. (Without -chaos
						// any failure still aborts loudly.)
						degraded.Add(1)
						if consecFails++; consecFails < 5000 {
							time.Sleep(2 * time.Millisecond)
							continue
						}
					}
					errs[c] = err
					return
				}
				consecFails = 0
				d := time.Since(opStart)
				for range ops {
					recs[c].Record(d)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	metricsDelta := obs.Delta(before, reg.Snapshot())
	close(stopChaos)
	for _, err := range errs {
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", err)
			return 1
		}
	}
	var lat core.LatencyRecorder
	for c := range recs {
		lat.Merge(&recs[c])
	}
	st := coord.Stats()
	sum := lat.Summary()
	// With -json - the JSON record owns stdout (as in workload mode);
	// the human report is suppressed so the output stays parseable.
	if cfg.jsonPath != "-" {
		fmt.Printf("net OLTP  (%d shard servers, %d clients, batch %d, seed %d)\n",
			coord.Nodes(), cfg.clients, cfg.batch, cfg.seed)
		fmt.Printf("  processed: %d ops in %v (%d preloaded rows untimed)\n",
			sum.Count, elapsed.Round(time.Millisecond), cfg.rows)
		fmt.Printf("  OPS: %.1f ops/s\n", float64(sum.Count)/elapsed.Seconds())
		fmt.Printf("  latency: %s\n", sum)
		fmt.Printf("  remote: accepted %d, rejected %d, batches %d\n",
			st.Accepted, st.Rejected, st.Batches)
	}
	if cfg.chaos {
		var pending, replayed, dropped uint64
		for _, ns := range st.Nodes {
			pending += ns.HintsPending
			replayed += ns.HintsReplayed
			dropped += ns.HintsDropped
		}
		killMode := "external kills"
		if kills != nil {
			killMode = fmt.Sprintf("%d kills", kills.Load())
		}
		if cfg.jsonPath != "-" {
			fmt.Printf("  chaos: %s, %d degraded batches, %d members down at exit\n",
				killMode, degraded.Load(), st.Down)
			fmt.Printf("  hints: %d replayed, %d pending, %d dropped\n",
				replayed, pending, dropped)
		}
		if kills != nil && kills.Load() == 0 {
			fmt.Fprintln(os.Stderr, "bdbench: chaos mode never killed a server (run too short?)")
			return 1
		}
	}
	if cfg.jsonPath != "" {
		us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
		rec := struct {
			Mode      string  `json:"mode"`
			Shards    int     `json:"shards"`
			Clients   int     `json:"clients"`
			Ops       int     `json:"ops"`
			ElapsedNs int64   `json:"elapsedNs"`
			OpsPerSec float64 `json:"opsPerSec"`
			LatP50Us  float64 `json:"latP50Us"`
			LatP95Us  float64 `json:"latP95Us"`
			LatP99Us  float64 `json:"latP99Us"`
			LatMaxUs  float64 `json:"latMaxUs"`
			Degraded  int64   `json:"degradedBatches"`
			// Metrics is the client-side obs registry delta across the
			// timed phase (bd_cluster_* and per-peer bd_transport_client_*).
			Metrics map[string]float64 `json:"metrics,omitempty"`
		}{
			Mode: "net", Shards: coord.Nodes(), Clients: cfg.clients,
			Ops: sum.Count, ElapsedNs: elapsed.Nanoseconds(),
			OpsPerSec: float64(sum.Count) / elapsed.Seconds(),
			LatP50Us:  us(sum.P50), LatP95Us: us(sum.P95),
			LatP99Us: us(sum.P99), LatMaxUs: us(sum.Max),
			Degraded: degraded.Load(),
			Metrics:  metricsDelta,
		}
		if err := writeJSONFile(cfg.jsonPath, rec); err != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", err)
			return 1
		}
	}
	return 0
}
