package main

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bdgs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/transport"
)

// netConfig carries the networked-mode flags out of main.
type netConfig struct {
	addrs    string // comma-separated shard servers (-net client mode)
	listen   string // serve mode listen address
	shards   int
	repl     int
	clients  int
	conns    int
	ops      int
	batch    int
	rows     int
	seed     int64
	jsonPath string // machine-readable results ("" = none, "-" = stdout)
	engine   engine.Options

	// traceEvery stamps a fresh wire trace id on every Nth batch per
	// client (0 disables), so a sampled slice of the run shows up in the
	// servers' /tracez span logs without tracing the whole load.
	traceEvery int

	// trace drives one traced probe after the measured load, pulls every
	// server's spans over the wire (OpTraceFetch) and prints the
	// assembled hop tree with critical path and phase attribution.
	trace bool

	// slo is a request-latency objective ("<threshold>:<target>", e.g.
	// 5ms:0.999) evaluated over the run's per-op latencies; the summary
	// prints after the run and is embedded in the -json record.
	slo string

	// chaos mode: kill/restart a shard server mid-run and keep serving.
	chaos     bool
	killEvery time.Duration // period between kills (self-hosted chaos)
	downFor   time.Duration // how long a killed server stays down
	dur       time.Duration // run for a wall-clock duration instead of -ops

	// elastic joins the -addr servers as gossip seeds — the coordinator
	// is a RouteOnly member of the epoch-versioned cluster, discovers the
	// rest of the ring by anti-entropy, and follows view changes (joins,
	// leaves, crashes) live instead of being wired to a static ring.
	elastic bool

	// resize self-hosts an elastic cluster and resizes it mid-run: a
	// member joins at one quarter of the run, another retires at half,
	// and the report breaks throughput/latency into the four windows.
	resize bool
}

// peerSet tracks the coordinator's per-server clients for the jobs the
// cluster layer doesn't do itself: one-time per-peer metrics
// registration, fanning a view change's epoch out to every connection's
// frame stamp, and the span-fetch targets for -trace. A dialed client
// is never evicted: the cluster decides which connection to an address
// it keeps (Join's seed exchanges and ensureMembers' canonical dials
// can interleave), so epoch restamps go to every client ever handed
// out — a closed one absorbs the store harmlessly, while guessing
// "latest wins" would strand the one the cluster actually uses on a
// stale stamp and bounce every request it routes.
type peerSet struct {
	mu     sync.Mutex
	reg    *obs.Registry
	epoch  uint64
	byAddr map[string][]*transport.RemoteNode
}

func newPeerSet() *peerSet {
	return &peerSet{byAddr: map[string][]*transport.RemoteNode{}}
}

func (p *peerSet) add(addr string, rn *transport.RemoteNode) {
	p.mu.Lock()
	prior := p.byAddr[addr]
	p.byAddr[addr] = append(prior, rn)
	rn.SetEpoch(p.epoch)
	if p.reg != nil && len(prior) == 0 {
		rn.RegisterMetrics(p.reg, obs.Labels{"peer": addr})
	}
	p.mu.Unlock()
}

// register exports one connection's counters per address — the newest,
// which post-Join is the one the cluster kept — and turns on
// registration for future adds (members discovered mid-run).
func (p *peerSet) register(reg *obs.Registry) {
	p.mu.Lock()
	p.reg = reg
	for addr, rns := range p.byAddr {
		rns[len(rns)-1].RegisterMetrics(reg, obs.Labels{"peer": addr})
	}
	p.mu.Unlock()
}

// setEpoch restamps every connection after a view change so the next
// frame each one sends carries the epoch the servers expect.
func (p *peerSet) setEpoch(e uint64) {
	p.mu.Lock()
	p.epoch = e
	for _, rns := range p.byAddr {
		for _, rn := range rns {
			rn.SetEpoch(e)
		}
	}
	p.mu.Unlock()
}

// peers returns one client per address (the newest) for the -trace
// span fetch.
func (p *peerSet) peers() []*transport.RemoteNode {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*transport.RemoteNode, 0, len(p.byAddr))
	for _, rns := range p.byAddr {
		out = append(out, rns[len(rns)-1])
	}
	return out
}

// elasticDialer is the RouteOnly coordinator's cluster.Config.Dial.
// Each member connection adopts view bounces (a RespView reply feeds
// AdoptEncodedView, then the op retries on the fresh view) and is
// stamped with the current epoch so its data frames pass the servers'
// epoch fence. coord is a pointer-to-pointer because the dialer must be
// in the Config before cluster.New returns the coordinator it closes
// over; no dial happens until Join, by which point it is set.
func elasticDialer(coord **cluster.Cluster, ps *peerSet, base transport.ClientOptions) func(string) (cluster.Remote, error) {
	return func(addr string) (cluster.Remote, error) {
		opts := base
		opts.OnView = func(view []byte) {
			if c := *coord; c != nil {
				c.AdoptEncodedView(view)
			}
		}
		rn, err := transport.Connect(addr, opts)
		if err != nil {
			return nil, err
		}
		if c := *coord; c != nil {
			rn.SetEpoch(c.ViewEpoch())
		}
		ps.add(addr, rn)
		return rn, nil
	}
}

// newElasticCoordinator builds a RouteOnly cluster member, joins it to
// the seed servers by gossip, and returns it with the peer set its
// dialer feeds. The caller owns Close.
func newElasticCoordinator(coordCfg cluster.Config, clientOpts transport.ClientOptions, seeds []string) (*cluster.Cluster, *peerSet, error) {
	ps := newPeerSet()
	var coord *cluster.Cluster
	coordCfg.RouteOnly = true
	coordCfg.Dial = elasticDialer(&coord, ps, clientOpts)
	coordCfg.OnViewChange = func(v *cluster.ClusterView) { ps.setEpoch(v.Epoch) }
	coord = cluster.New(coordCfg)
	if err := coord.Join(seeds...); err != nil {
		coord.Close()
		return nil, nil, err
	}
	return coord, ps, nil
}

// runListen hosts shard nodes for remote coordinators — bdserve embedded
// in bdbench for single-binary experiments, sharing bdserve's
// serve-and-drain flow (transport.ServeUntilSignal). Blocks until
// SIGINT/SIGTERM, then drains gracefully.
func runListen(cfg netConfig) int {
	if err := engine.Validate(cfg.engine); err != nil {
		fmt.Fprintln(os.Stderr, "bdbench:", err)
		return 2
	}
	shards := cfg.shards
	if shards <= 0 {
		shards = 1
	}
	events := obs.NewEventLog(256)
	cl := cluster.New(cluster.Config{Shards: shards, Replication: cfg.repl, Engine: cfg.engine, Events: events})
	reg := obs.NewRegistry()
	cl.RegisterMetrics(reg)
	obs.RegisterRuntimeMetrics(reg)
	srv, err := transport.ServeUntilSignal(cfg.listen, cl, transport.ServerOptions{Metrics: reg, Events: events},
		func(s *transport.Server) {
			s.RegisterMetrics(reg)
			events.SetNode(s.Addr())
			fmt.Printf("bdbench: serving %d shards on %s\n", shards, s.Addr())
		})
	if err != nil && srv == nil {
		fmt.Fprintln(os.Stderr, "bdbench:", err)
		return 1
	}
	cl.Close()
	fmt.Printf("bdbench: drained; served %d requests\n", srv.Served())
	return 0
}

// chaosServer is one self-hosted shard server the chaos controller can
// crash and restart: Close() drops the listener and every connection
// (the coordinator sees the member die), reopen rebinds the same
// address over the surviving backend — the durable-storage restart
// model.
type chaosServer struct {
	addr    string
	backend *cluster.Cluster
	srv     *transport.Server
}

// runChaosController kills one server at a time round-robin: down for
// cfg.downFor, then restarted, with cfg.killEvery between kill times.
// It returns the kill count after stop closes.
func runChaosController(servers []*chaosServer, cfg netConfig, stop <-chan struct{}) *atomic.Int64 {
	kills := &atomic.Int64{}
	go func() {
		victim := 0
		for {
			select {
			case <-stop:
				return
			case <-time.After(cfg.killEvery):
			}
			s := servers[victim%len(servers)]
			victim++
			s.srv.Close()
			kills.Add(1)
			select {
			case <-stop:
				// Restart even on shutdown so the drain below finds a
				// live server to close.
			case <-time.After(cfg.downFor):
			}
			srv, err := transport.Listen(s.addr, s.backend, transport.ServerOptions{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "bdbench: chaos restart %s: %v\n", s.addr, err)
				return
			}
			s.srv = srv
		}
	}()
	return kills
}

// runNet drives the paper's Zipf 95/5 Cloud-OLTP mix over real sockets:
// a client-side coordinator routes to the shard servers in -addr, with
// closed-loop clients submitting batches and recording the service time
// each op rode in — the testbed measurement the in-process workloads
// cannot express.
//
// With -chaos the run is failure-aware end to end: workers tolerate the
// transient errors a dying member throws (counted as degraded batches)
// while the coordinator's prober marks it down, fails reads and writes
// over to surviving replicas, and replays hinted writes on recovery.
// Without -addr, chaos self-hosts two in-process shard servers and
// kills/restarts them on a timer; with -addr the kills are external
// (e.g. scripts/transport_smoke.sh SIGKILLing a bdserve) and bdbench
// just has to keep serving through them.
func runNet(cfg netConfig) int {
	var sloThreshold time.Duration
	var sloTarget float64
	if cfg.slo != "" {
		var err error
		if sloThreshold, sloTarget, err = parseSLOSpec(cfg.slo); err != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", err)
			return 2
		}
	}
	var addrs []string
	for _, addr := range strings.Split(cfg.addrs, ",") {
		if addr = strings.TrimSpace(addr); addr != "" {
			addrs = append(addrs, addr)
		}
	}

	if cfg.elastic && len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "bdbench: -elastic needs -addr gossip seeds (self-hosted -chaos members are static; -resize self-hosts an elastic cluster)")
		return 2
	}

	var chaosServers []*chaosServer
	if cfg.chaos && len(addrs) == 0 {
		// Self-hosted chaos: two shard servers in-process, so one binary
		// demonstrates the whole crash/recovery cycle.
		for i := 0; i < 2; i++ {
			backend := cluster.New(cluster.Config{Shards: 1, Engine: cfg.engine})
			srv, err := transport.Listen("127.0.0.1:0", backend, transport.ServerOptions{})
			if err != nil {
				fmt.Fprintln(os.Stderr, "bdbench: chaos listen:", err)
				return 1
			}
			cs := &chaosServer{addr: srv.Addr(), backend: backend, srv: srv}
			chaosServers = append(chaosServers, cs)
			addrs = append(addrs, cs.addr)
			defer backend.Close()
		}
		if cfg.repl < 2 {
			cfg.repl = 2 // a lone copy cannot survive its server's death
		}
	}

	coordCfg := cluster.Config{Replication: cfg.repl}
	clientOpts := transport.ClientOptions{Conns: cfg.conns}
	// With -trace the bench becomes a span-recording hop itself: the
	// coordinator's cluster spans and every client connection's
	// roundtrip spans land in one bench-side ring, merged at assembly
	// with the spans fetched from the servers.
	var benchSpans *obs.SpanLog
	if cfg.trace {
		benchSpans = obs.NewSpanLog(512)
		benchSpans.SetNode("bench")
		coordCfg.Spans = benchSpans
		clientOpts.Spans = benchSpans
	}
	if cfg.chaos {
		// Aggressive detection, fail-fast redials: with the patient
		// defaults a short outage is bridged by the client's dial-retry
		// loop and failover never engages — the run would measure a
		// stall, not the failure machinery it exists to exercise.
		coordCfg.ProbeInterval = 20 * time.Millisecond
		coordCfg.ProbeFailures = 2
		// Outage windows at full load buffer tens of thousands of missed
		// writes; size the handoff buffer so convergence doesn't shed.
		coordCfg.HintLimit = 1 << 17
		clientOpts.Timeout = 2 * time.Second
		clientOpts.DialTimeout = 100 * time.Millisecond
		clientOpts.PingTimeout = 100 * time.Millisecond
	}
	// Static mode wires every -addr server into the ring by hand; elastic
	// mode hands the same addresses to Join as gossip seeds and lets the
	// coordinator discover the ring (and every later change to it) by
	// anti-entropy.
	var coord *cluster.Cluster
	var ps *peerSet
	if cfg.elastic {
		var err error
		if coord, ps, err = newElasticCoordinator(coordCfg, clientOpts, addrs); err != nil {
			fmt.Fprintf(os.Stderr, "bdbench: join %s: %v\n", cfg.addrs, err)
			return 1
		}
	} else {
		coord = cluster.NewEmpty(coordCfg)
		ps = newPeerSet()
		for _, addr := range addrs {
			rn, err := transport.Connect(addr, clientOpts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bdbench: connect %s: %v\n", addr, err)
				return 1
			}
			if _, _, err := coord.AddRemote(rn); err != nil {
				fmt.Fprintf(os.Stderr, "bdbench: join %s: %v\n", addr, err)
				return 1
			}
			ps.add(addr, rn)
		}
	}
	defer coord.Close()
	// The run's own client-side observability: the coordinator's health
	// and failover counters plus each peer connection's retry/redial
	// counters, snapshotted around the timed phase so the JSON record
	// reports exactly what the measured load did (obs.Delta). The
	// frame-pool hit/miss counters are the client side of the §12 pooled
	// hot path, so a pool-efficiency regression shows in the run record.
	reg := obs.NewRegistry()
	coord.RegisterMetrics(reg)
	transport.RegisterPoolMetrics(reg)
	ps.register(reg)
	if coord.Nodes() == 0 {
		fmt.Fprintln(os.Stderr, "bdbench: -net needs at least one -addr shard server (or -chaos)")
		return 2
	}

	// Untimed bulk load, values pre-encoded so the timed phase measures
	// the serving path.
	var m bdgs.ResumeModel
	resumes := m.Generate(cfg.seed, cfg.rows)
	vals := make([][]byte, cfg.rows)
	load := make([]cluster.Op, 0, 256)
	for i, re := range resumes {
		vals[i] = re.Encode()
		load = append(load, cluster.Op{Kind: cluster.OpPut, Key: []byte(re.Key), Value: vals[i]})
		if len(load) == cap(load) {
			if _, err := coord.Apply(load); err != nil {
				fmt.Fprintln(os.Stderr, "bdbench: preload:", err)
				return 1
			}
			load = load[:0]
		}
	}
	if len(load) > 0 {
		if _, err := coord.Apply(load); err != nil {
			fmt.Fprintln(os.Stderr, "bdbench: preload:", err)
			return 1
		}
	}

	stopChaos := make(chan struct{})
	var kills *atomic.Int64
	if len(chaosServers) > 0 {
		kills = runChaosController(chaosServers, cfg, stopChaos)
	}

	const readFraction = 0.95
	// The SLO tracker reads the same histogram the workers feed; the
	// initial sample anchors the burn-rate windows at the run's start and
	// the 1s ticker gives the short windows in-run history.
	latHist := &obs.Histogram{}
	var slo *obs.SLO
	if cfg.slo != "" {
		slo = obs.NewSLO()
		slo.AddObjective(obs.Objective{
			Name: "net-oltp", Hist: latHist,
			Threshold: sloThreshold, Target: sloTarget,
		})
	}
	recs := make([]core.LatencyRecorder, cfg.clients)
	errs := make([]error, cfg.clients)
	var issued atomic.Int64
	var degraded atomic.Int64
	deadline := time.Time{}
	if cfg.dur > 0 {
		deadline = time.Now().Add(cfg.dur)
	}
	var wg sync.WaitGroup
	before := reg.Snapshot()
	start := time.Now()
	if slo != nil {
		slo.SampleAt(start)
		slo.Start(time.Second)
	}
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + 707*int64(c+1)))
			z := rand.NewZipf(rng, 1.1, 4, uint64(cfg.rows-1))
			ops := make([]cluster.Op, 0, cfg.batch)
			consecFails := 0
			batchNo := 0
			for {
				want := cfg.batch
				if cfg.dur > 0 {
					if !time.Now().Before(deadline) {
						return
					}
					issued.Add(int64(cfg.batch))
				} else {
					n := int(issued.Add(int64(cfg.batch)))
					if n-cfg.batch >= cfg.ops {
						return
					}
					if over := n - cfg.ops; over > 0 {
						want -= over
					}
				}
				ops = ops[:0]
				for len(ops) < want {
					row := int(z.Uint64())
					key := []byte(bdgs.ResumeKey(row))
					if rng.Float64() < readFraction {
						ops = append(ops, cluster.Op{Kind: cluster.OpGet, Key: key})
					} else {
						ops = append(ops, cluster.Op{Kind: cluster.OpPut, Key: key, Value: vals[row]})
					}
				}
				if batchNo++; cfg.traceEvery > 0 && batchNo%cfg.traceEvery == 0 {
					t := obs.NewTraceID()
					for i := range ops {
						ops[i].Trace = t
					}
				}
				opStart := time.Now()
				if _, err := coord.Apply(ops); err != nil {
					if cfg.chaos {
						// Failure-aware serving: a batch that hit a dying
						// member is degraded, not fatal — the prober will
						// reroute; keep the load coming. (Without -chaos
						// any failure still aborts loudly.)
						degraded.Add(1)
						if consecFails++; consecFails < 5000 {
							time.Sleep(2 * time.Millisecond)
							continue
						}
					}
					errs[c] = err
					return
				}
				consecFails = 0
				d := time.Since(opStart)
				for range ops {
					recs[c].Record(d)
					if cfg.slo != "" {
						latHist.Observe(d)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	metricsDelta := obs.Delta(before, reg.Snapshot())
	var sloReports []obs.SLOReport
	if slo != nil {
		slo.Stop()
		sloReports = slo.ReportAt(time.Now())
	}
	close(stopChaos)
	for _, err := range errs {
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", err)
			return 1
		}
	}
	var lat core.LatencyRecorder
	for c := range recs {
		lat.Merge(&recs[c])
	}
	st := coord.Stats()
	sum := lat.Summary()
	// With -json - the JSON record owns stdout (as in workload mode);
	// the human report is suppressed so the output stays parseable.
	if cfg.jsonPath != "-" {
		fmt.Printf("net OLTP  (%d shard servers, %d clients, batch %d, seed %d)\n",
			coord.Nodes(), cfg.clients, cfg.batch, cfg.seed)
		fmt.Printf("  processed: %d ops in %v (%d preloaded rows untimed)\n",
			sum.Count, elapsed.Round(time.Millisecond), cfg.rows)
		fmt.Printf("  OPS: %.1f ops/s\n", float64(sum.Count)/elapsed.Seconds())
		fmt.Printf("  latency: %s\n", sum)
		fmt.Printf("  remote: accepted %d, rejected %d, batches %d\n",
			st.Accepted, st.Rejected, st.Batches)
		for _, line := range strings.Split(strings.TrimSuffix(obs.FormatSLO(sloReports), "\n"), "\n") {
			if line != "" {
				fmt.Println(" ", line)
			}
		}
	}
	if cfg.chaos {
		var pending, replayed, dropped uint64
		for _, ns := range st.Nodes {
			pending += ns.HintsPending
			replayed += ns.HintsReplayed
			dropped += ns.HintsDropped
		}
		killMode := "external kills"
		if kills != nil {
			killMode = fmt.Sprintf("%d kills", kills.Load())
		}
		if cfg.jsonPath != "-" {
			fmt.Printf("  chaos: %s, %d degraded batches, %d members down at exit\n",
				killMode, degraded.Load(), st.Down)
			fmt.Printf("  hints: %d replayed, %d pending, %d dropped\n",
				replayed, pending, dropped)
		}
		if kills != nil && kills.Load() == 0 {
			fmt.Fprintln(os.Stderr, "bdbench: chaos mode never killed a server (run too short?)")
			return 1
		}
	}
	var traceRec *traceReport
	if cfg.trace {
		tr, err := runTraceProbe(coord, benchSpans, ps.peers(), cfg.chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", err)
			return 1
		}
		out := os.Stdout
		if cfg.jsonPath == "-" {
			out = os.Stderr // the JSON record owns stdout
		}
		fmt.Fprintln(out)
		tr.Format(out)
		traceRec = newTraceReport(tr)
	}
	if cfg.jsonPath != "" {
		us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
		rec := struct {
			Mode      string  `json:"mode"`
			Shards    int     `json:"shards"`
			Clients   int     `json:"clients"`
			Ops       int     `json:"ops"`
			ElapsedNs int64   `json:"elapsedNs"`
			OpsPerSec float64 `json:"opsPerSec"`
			LatP50Us  float64 `json:"latP50Us"`
			LatP95Us  float64 `json:"latP95Us"`
			LatP99Us  float64 `json:"latP99Us"`
			LatMaxUs  float64 `json:"latMaxUs"`
			Degraded  int64   `json:"degradedBatches"`
			// Metrics is the client-side obs registry delta across the
			// timed phase (bd_cluster_* and per-peer bd_transport_client_*).
			Metrics map[string]obs.Value `json:"metrics,omitempty"`
			// SLO is the -slo objective's standing over the run (lifetime
			// compliance plus per-window burn rates).
			SLO []obs.SLOReport `json:"slo,omitempty"`
			// Trace is the -trace probe's assembled-trace summary.
			Trace *traceReport `json:"trace,omitempty"`
		}{
			Mode: "net", Shards: coord.Nodes(), Clients: cfg.clients,
			Ops: sum.Count, ElapsedNs: elapsed.Nanoseconds(),
			OpsPerSec: float64(sum.Count) / elapsed.Seconds(),
			LatP50Us:  us(sum.P50), LatP95Us: us(sum.P95),
			LatP99Us: us(sum.P99), LatMaxUs: us(sum.Max),
			Degraded: degraded.Load(),
			Metrics:  metricsDelta,
			SLO:      sloReports,
			Trace:    traceRec,
		}
		if err := writeJSONFile(cfg.jsonPath, rec); err != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", err)
			return 1
		}
	}
	return 0
}

// traceReport is the machine-readable summary of the -trace probe's
// assembled trace for the -json record.
type traceReport struct {
	ID             uint64           `json:"id"`
	Spans          int              `json:"spans"`
	MissingHops    int              `json:"missingHops"`
	RootNs         int64            `json:"rootNs"`
	CriticalPathNs int64            `json:"criticalPathNs"`
	CriticalPath   []string         `json:"criticalPath"`
	PhaseNs        map[string]int64 `json:"phaseNs,omitempty"`
}

func newTraceReport(tr *obs.Trace) *traceReport {
	path := tr.CriticalPath()
	names := make([]string, len(path))
	for i, n := range path {
		names[i] = n.Span.Name
	}
	phases := map[string]int64{}
	for name, d := range tr.PhaseAttribution() {
		phases[name] = int64(d)
	}
	return &traceReport{
		ID: tr.ID, Spans: tr.Spans, MissingHops: tr.Missing,
		RootNs:         int64(tr.Root.Span.Dur),
		CriticalPathNs: int64(tr.CriticalPathDuration()),
		CriticalPath:   names, PhaseNs: phases,
	}
}

// runTraceProbe drives one traced write+read through the coordinator
// after the measured load, then plays distributed collector: the
// bench-side ring holds the probe's root span plus the coordinator's
// cluster spans and the client connections' roundtrip spans, and every
// server's spans are pulled over the wire (OpTraceFetch) before
// assembly. The probe runs after the timed phase so the traced frames'
// extra 16 wire bytes never touch the measurement.
func runTraceProbe(coord *cluster.Cluster, ring *obs.SpanLog, peers []*transport.RemoteNode, chaos bool) (*obs.Trace, error) {
	trace := obs.NewTraceID()
	root := obs.NewSpanID()
	key := []byte("bench:trace-probe")
	ops := []cluster.Op{
		{Kind: cluster.OpPut, Key: key, Value: []byte("probe"), Trace: trace, Parent: root},
		{Kind: cluster.OpGet, Key: key, Trace: trace, Parent: root},
	}
	start := time.Now()
	_, err := coord.Apply(ops)
	for retries := 0; err != nil && chaos && retries < 100; retries++ {
		// A chaos kill can race the probe; the prober reroutes within a
		// few intervals, so retry rather than fail the report.
		time.Sleep(20 * time.Millisecond)
		_, err = coord.Apply(ops)
	}
	if err != nil {
		return nil, fmt.Errorf("traced probe: %w", err)
	}
	ring.Record(obs.Span{
		Trace: trace, ID: root, Name: "bench/probe",
		Start: start, Dur: time.Since(start),
	})
	spans := ring.ByTrace(trace)
	// Servers record their span after the response flush, so a fetch can
	// outrun the ring: poll briefly per peer. A peer that owns no copy of
	// the probe key times out empty, which assembles fine without it.
	for _, rn := range peers {
		deadline := time.Now().Add(500 * time.Millisecond)
		for {
			remote, err := rn.FetchSpans(trace)
			if err == nil && len(remote) > 0 {
				spans = append(spans, remote...)
				break
			}
			if time.Now().After(deadline) {
				break // unreachable or nothing retained: assemble what we have
			}
			time.Sleep(time.Millisecond)
		}
	}
	tr := obs.Assemble(trace, spans)
	if tr == nil {
		return nil, fmt.Errorf("traced probe collected no spans")
	}
	return tr, nil
}

// parseSLOSpec parses "<threshold>:<target>" (e.g. "5ms:0.999") — the
// same spec bdserve's -slo flag takes.
func parseSLOSpec(spec string) (time.Duration, float64, error) {
	th, tg, ok := strings.Cut(spec, ":")
	if !ok {
		return 0, 0, fmt.Errorf("-slo %q: want <threshold>:<target>, e.g. 5ms:0.999", spec)
	}
	d, err := time.ParseDuration(th)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("-slo threshold %q: want a positive duration", th)
	}
	target, err := strconv.ParseFloat(tg, 64)
	if err != nil || target <= 0 || target >= 1 {
		return 0, 0, fmt.Errorf("-slo target %q: want a fraction in (0,1)", tg)
	}
	return d, target, nil
}
