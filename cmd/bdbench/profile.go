package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// startProfiles turns on the optional pprof capture for a bench run.
// The returned stop function flushes both profiles and is idempotent,
// so every exit path — error exits included — can call it and the
// normal-return defer can call it again without double-writing. An
// empty path disables that profile.
//
// The CPU profile covers everything from flag parsing to exit; for the
// hot-path work (§12) that is what we want — the run phases dominate
// and the sample tags separate client encode, server dispatch, and
// engine time. The heap profile is written at stop after a forced GC,
// so it shows live steady-state memory, not transient garbage.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "bdbench: cpuprofile:", err)
				}
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "bdbench: memprofile:", err)
					return
				}
				runtime.GC() // collect garbage so the profile shows live objects
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "bdbench: memprofile:", err)
				}
				if err := f.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "bdbench: memprofile:", err)
				}
			}
		})
	}, nil
}
