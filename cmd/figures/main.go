// Command figures regenerates every table and figure of the paper's
// evaluation section (Tables 1-7, Figures 2-6) from the reimplemented
// suite and writes each as an aligned text rendering plus a TSV series
// under the output directory.
//
// Examples:
//
//	figures -out out                 # everything, quick preset
//	figures -out out -preset full    # higher-fidelity inputs
//	figures -only table4,fig6_1 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/figures"
)

func main() {
	var (
		outDir = flag.String("out", "out", "output directory")
		only   = flag.String("only", "", "comma-separated artifact list (e.g. table4,fig2); empty = all")
		preset = flag.String("preset", "quick", "input preset: quick | full")
		verb   = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	cfg := figures.Quick()
	if *preset == "full" {
		cfg = figures.Full()
	}
	if *verb {
		cfg.Progress = func(msg string) { fmt.Fprintln(os.Stderr, "  ", msg) }
	}

	want := map[string]bool{}
	for _, a := range strings.Split(*only, ",") {
		if a = figures.NormalizeArtifact(a); a != "" {
			want[a] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	emit := func(name string, gen func() (*core.Table, error)) {
		if !selected(name) {
			return
		}
		start := time.Now()
		t, err := gen()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		if err := os.WriteFile(filepath.Join(*outDir, name+".txt"), []byte(t.Render()), 0o644); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*outDir, name+".tsv"), []byte(t.TSV()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("%-8s  %s  (%.1fs)\n", name, t.Title, time.Since(start).Seconds())
	}

	tables := figures.AllTables()
	for _, name := range figures.ArtifactOrder() {
		if gen, ok := tables[name]; ok {
			g := gen
			emit(name, func() (*core.Table, error) { return g(), nil })
			continue
		}
		switch name {
		case "fig2":
			emit(name, cfg.Fig2)
		case "fig3_1":
			emit(name, cfg.Fig3MIPS)
		case "fig3_2":
			emit(name, cfg.Fig3Speedup)
		case "fig4":
			emit(name, cfg.Fig4)
		case "fig5_1":
			emit(name, func() (*core.Table, error) { return cfg.Fig5("fp") })
		case "fig5_2":
			emit(name, func() (*core.Table, error) { return cfg.Fig5("int") })
		case "fig6_1":
			emit(name, cfg.Fig6Cache)
		case "fig6_2":
			emit(name, cfg.Fig6TLB)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
