// Command bdgen is the Big Data Generator Suite CLI (paper Section 5): it
// scales the six seed data-set models to a requested volume and writes the
// result in the format the workloads consume.
//
// Examples:
//
//	bdgen -kind text -bytes 10485760 -out corpus.txt
//	bdgen -kind graph -scale 16 -edges 8 -out edges.tsv
//	bdgen -kind table -orders 10000 -out ecommerce.tsv
//	bdgen -kind resume -n 1000 -out resumes.txt
//	bdgen -kind review -n 5000 -out reviews.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bdgs"
)

func main() {
	var (
		kind   = flag.String("kind", "text", "text | graph | table | resume | review | vectors")
		out    = flag.String("out", "-", "output path (- for stdout)")
		seed   = flag.Int64("seed", 1, "generation seed")
		nBytes = flag.Int("bytes", 1<<20, "text: approximate corpus bytes")
		scale  = flag.Int("scale", 12, "graph: log2 of the vertex count")
		edges  = flag.Int("edges", 8, "graph: edges per vertex")
		social = flag.Bool("social", false, "graph: use the denser social-graph parameters (undirected)")
		orders = flag.Int("orders", 1000, "table: ORDER row count")
		n      = flag.Int("n", 1000, "resume/review/vectors: record count")
		dim    = flag.Int("dim", 16, "vectors: dimensionality")
		k      = flag.Int("k", 8, "vectors: latent cluster count")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	defer bw.Flush()

	switch *kind {
	case "text":
		m := bdgs.NewTextModel(30000)
		if _, err := bw.Write(m.Corpus(*seed, *nBytes)); err != nil {
			fail(err)
		}
	case "graph":
		params, directed := bdgs.WebGraphParams(), true
		if *social {
			params, directed = bdgs.SocialGraphParams(), false
		}
		g := bdgs.GenGraph(*seed, *scale, *edges, params, directed)
		for _, e := range g.EdgeList() {
			fmt.Fprintf(bw, "%d\t%d\n", e[0], e[1])
		}
	case "table":
		m := bdgs.NewTableModel(*orders)
		os_, items := m.Generate(*seed, *orders)
		fmt.Fprintln(bw, "#ORDER\tORDER_ID\tBUYER_ID\tCREATE_DATE")
		for _, o := range os_ {
			fmt.Fprintf(bw, "O\t%d\t%d\t%d\n", o.OrderID, o.BuyerID, o.CreateDate)
		}
		fmt.Fprintln(bw, "#ITEM\tITEM_ID\tORDER_ID\tGOODS_ID\tNUMBER\tPRICE\tAMOUNT")
		for _, it := range items {
			fmt.Fprintf(bw, "I\t%d\t%d\t%d\t%.2f\t%.2f\t%.6f\n",
				it.ItemID, it.OrderID, it.GoodsID, it.GoodsNumber, it.GoodsPrice, it.GoodsAmount)
		}
	case "resume":
		var m bdgs.ResumeModel
		for _, re := range m.Generate(*seed, *n) {
			fmt.Fprintf(bw, "-- %s\n", re.Key)
			if _, err := bw.Write(re.Encode()); err != nil {
				fail(err)
			}
		}
	case "review":
		tm := bdgs.NewTextModel(10000)
		m := bdgs.NewReviewModel(*n, tm)
		for _, rv := range m.Generate(*seed, *n, 60) {
			fmt.Fprintf(bw, "%d\t%d\t%d\t%s\n", rv.UserID, rv.ItemID, rv.Rating, rv.Text)
		}
	case "vectors":
		for _, v := range bdgs.Vectors(*seed, *n, *dim, *k) {
			for j, x := range v {
				if j > 0 {
					fmt.Fprint(bw, "\t")
				}
				fmt.Fprintf(bw, "%.5f", x)
			}
			fmt.Fprintln(bw)
		}
	default:
		fmt.Fprintf(os.Stderr, "bdgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bdgen:", err)
	os.Exit(1)
}
